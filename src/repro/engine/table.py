"""Tables: schema + physical store + positional index + key index.

A table row has three identities:

* its **rid** — immutable storage handle assigned by the store,
* its **position** — 0-based presentation order, maintained by the
  positional index (paper §3) so the interface can show rows in a stable,
  user-visible order and fetch any window in O(log n + window),
* its **primary key** (optional) — the database identity the interface
  manager uses to translate sheet edits into updates (paper §3, Interface
  Manager).

All mutations funnel through this class so that constraint checking, index
maintenance and change events stay consistent.  Change events drive the
two-way sync layer: every listener receives :class:`ChangeEvent` records
after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.sanitizer import NULL_SANITIZER
from repro.engine.hybridstore import restructure_blocks
from repro.engine.layout import LayoutAdvisor, LayoutMigration, LayoutRecommendation
from repro.engine.pager import BufferPool
from repro.engine.schema import Column, TableSchema
from repro.engine.store import DEFAULT_BATCH_SIZE, GroupedTupleStore, LayoutPolicy
from repro.engine.types import coerce_value
from repro.errors import ConstraintError, ExecutionError, SchemaError, StorageError
from repro.index.btree import BPlusTree
from repro.index.positional import PositionalIndex

__all__ = ["Table", "ChangeEvent", "TableIndex"]


@dataclass
class TableIndex:
    """One secondary index: ``column`` value → rid (unique) or rid bucket.

    NULL keys are not indexed (SQL: NULL never equals anything, and an
    ``IS NULL`` probe is served by zone maps instead), so ``len(tree)``
    counts the *non-null* rows only."""

    name: str
    column: str
    unique: bool
    tree: BPlusTree = field(default_factory=BPlusTree)


@dataclass(frozen=True)
class ChangeEvent:
    """A committed change, delivered to sync listeners.

    ``kind`` is one of ``insert``, ``update``, ``delete``, ``add_column``,
    ``drop_column``, ``rename_column``.  ``position`` is the presentation
    position the change happened at (None for schema changes)."""

    table: str
    kind: str
    position: Optional[int] = None
    rid: Optional[int] = None
    row: Optional[Tuple[Any, ...]] = None
    old_row: Optional[Tuple[Any, ...]] = None
    column: Optional[str] = None
    extra: Optional[str] = None


class Table:
    """One relation with positional presentation order."""

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        layout: LayoutPolicy = LayoutPolicy.HYBRID,
        pool: Optional[BufferPool] = None,
        page_capacity: int = 128,
    ):
        self.name = name
        self.schema = schema
        self.store = GroupedTupleStore(schema, pool, layout, page_capacity, owner=name)
        self.positions = PositionalIndex()
        # Adaptive layout: off by default; ALTER TABLE ... SET LAYOUT AUTO
        # (or set_auto_layout) turns the advisor loop on.
        self.auto_layout = False
        # Page encodings ride the same maintenance loop; turn this off to
        # keep an auto-layout table migrating on plain pages only (used
        # by benchmarks that isolate the advisor's grouping decisions).
        self.auto_encode = True
        self.layout_advisor = LayoutAdvisor()
        self.layout_stats_horizon = 2048
        self._layout_migration: Optional[LayoutMigration] = None
        self._pk_index: Optional[BPlusTree] = None
        if schema.primary_key is not None:
            self._pk_index = BPlusTree(unique=True)
        # Secondary indexes by lowered index name; every DML path below
        # funnels through the _index_* helpers so the trees never drift
        # from the store (checker RC008 enforces this statically).
        self.indexes: Dict[str, TableIndex] = {}
        # Executor probes through index_for(); counted for the
        # db_index_lookups metric.
        self.index_lookups = 0
        self.listeners: List[Callable[[ChangeEvent], None]] = []
        # Maintenance event sink (a repro.obs.EventLog); the owning
        # Database wires its shared log in on attach.  None = no eventing.
        self.events = None
        # Runtime invariant checks; the catalog swaps in the database's
        # Sanitizer when sanitize mode is on.
        self.sanitizer = NULL_SANITIZER

    # -- basics -------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.store.n_rows

    @property
    def column_names(self) -> List[str]:
        return self.schema.column_names

    def _emit(self, event: ChangeEvent) -> None:
        for listener in self.listeners:
            listener(event)

    def _record_event(self, kind: str, **data: Any) -> None:
        if self.events is not None:
            self.events.record(kind, table=self.name, **data)

    # -- validation -----------------------------------------------------------

    def _prepare_row(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        if len(values) != self.schema.n_columns:
            raise ExecutionError(
                f"table {self.name!r} expects {self.schema.n_columns} values, "
                f"got {len(values)}"
            )
        prepared = []
        for column, value in zip(self.schema.columns, values):
            coerced = coerce_value(value, column.dtype)
            if coerced is None and column.default is not None:
                coerced = column.default
            if coerced is None and column.not_null:
                raise ConstraintError(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )
            prepared.append(coerced)
        return tuple(prepared)

    def _pk_value(self, row: Sequence[Any]) -> Any:
        pk = self.schema.primary_key
        if pk is None:
            return None
        return row[self.schema.column_index(pk)]

    # -- reads ---------------------------------------------------------------

    def rid_at(self, position: int) -> int:
        return self.positions.rid_at(position)

    def row_at(self, position: int) -> Tuple[Any, ...]:
        return self.store.get(self.positions.rid_at(position))

    def get(self, rid: int) -> Tuple[Any, ...]:
        return self.store.get(rid)

    def window(self, position: int, count: int) -> List[Tuple[Any, ...]]:
        """The viewport fetch: rows ``[position, position+count)`` in
        presentation order — O(log n + count)."""
        return [self.store.get(rid) for rid in self.positions.window(position, count)]

    def scan(self) -> Iterator[Tuple[int, int, Tuple[Any, ...]]]:
        """Yield ``(position, rid, row)`` in presentation order.

        Rides :meth:`scan_columns` over the full column set, so a scan
        opened before a concurrent write or layout migration streams
        exactly the pre-write rows (snapshot isolation)."""
        return self.scan_columns(self.column_names)

    def scan_columns(
        self, names: Sequence[str]
    ) -> Iterator[Tuple[int, int, Tuple[Any, ...]]]:
        """Yield ``(position, rid, values)`` in presentation order,
        touching only the page chains covering ``names``.

        The narrow scan the query pipeline rides: the store walks each
        covering chain sequentially (charging per-column and co-access
        statistics), and the positional index restores presentation
        order on top of the rid-aligned fragments.  The snapshot is
        acquired *at operator open* — the positional order and the store
        chains are captured atomically under the store's mutation lock,
        so the iterator is isolated from concurrent DML and background
        restructure swaps.  The store stream is consumed *on demand*:
        while presentation order tracks heap order (no positional
        inserts or moves — the common case) each row is handed through
        as it is read, so an early-exiting consumer (LIMIT) touches only
        a page prefix; rows surfaced out of order are buffered until
        their position comes up.  An empty ``names`` yields empty tuples
        without touching any page — what a bare ``COUNT(*)`` costs."""
        if not names:
            with self.store.mutation_lock:
                order = list(self.positions)

            def empties() -> Iterator[Tuple[int, int, Tuple[Any, ...]]]:
                for position, rid in enumerate(order):
                    yield position, rid, ()

            return empties()
        with self.store.mutation_lock:
            # One critical section pins both identities of the table: the
            # presentation order and the physical chains must describe the
            # same set of rows or the merge below would report a missing
            # rid on a perfectly healthy table.
            snap = self.store.snapshot()
            try:
                order = list(self.positions)
                source = self.store.scan_groups(names, snapshot=snap)
            except BaseException:
                snap.release()
                raise

        def rows() -> Iterator[Tuple[int, int, Tuple[Any, ...]]]:
            try:
                buffered: Dict[int, Tuple[Any, ...]] = {}
                for position, rid in enumerate(order):
                    while rid not in buffered:
                        try:
                            heap_rid, values = next(source)
                        except StopIteration:
                            raise StorageError(
                                f"rid {rid} missing from column scan of "
                                f"{self.name!r}"
                            ) from None
                        buffered[heap_rid] = values
                    yield position, rid, buffered.pop(rid)
            finally:
                snap.release()

        return rows()

    def scan_column_batches(
        self,
        names: Sequence[str],
        batch_size: int = DEFAULT_BATCH_SIZE,
        predicate_ranges: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Tuple[Any, List[int], List[List[Any]]]]:
        """Batched companion to :meth:`scan_columns`: yields
        ``(start_position, rids, columns)`` in presentation order, with
        ``columns`` holding one rid-aligned value list per name.

        While presentation order tracks heap order (no positional inserts
        or moves — the common case) the store's batches are passed through
        untouched; once they diverge, rows are buffered per rid and
        re-emitted in presentation order.  The snapshot is acquired at
        operator open, exactly like :meth:`scan_columns`, and charges the
        same workload statistics.

        ``predicate_ranges`` (lowered column name → ``expr.IntervalSet``)
        turns on zone-map data skipping: pages proven to hold no possible
        match are dropped before decode.  Because skipped pages leave holes
        in the presentation order, the first tuple element becomes a
        *list* of positions instead of a scalar start — callers that only
        consume ``columns`` (the vectorized filter pipeline) are shape
        agnostic.  Survivors are a superset of the true matches; callers
        still apply the full predicate."""
        names = list(names)
        if not names:
            return iter(())
        with self.store.mutation_lock:
            snap = self.store.snapshot()
            try:
                expected = list(self.positions)
                source = self.store.scan_group_batches(
                    names,
                    batch_size,
                    snapshot=snap,
                    predicate_ranges=predicate_ranges,
                )
            except BaseException:
                snap.release()
                raise
        width = len(names)
        if predicate_ranges:
            return self._skipping_batches(snap, expected, source, width, batch_size)

        def batches() -> Iterator[Tuple[int, List[int], List[List[Any]]]]:
            start = 0
            pending: Dict[int, Tuple[Any, ...]] = {}

            def drain() -> Iterator[Tuple[int, List[int], List[List[Any]]]]:
                nonlocal start
                batch_rids: List[int] = []
                batch_rows: List[Tuple[Any, ...]] = []
                while start + len(batch_rids) < len(expected):
                    row = pending.pop(expected[start + len(batch_rids)], None)
                    if row is None:
                        break
                    batch_rids.append(expected[start + len(batch_rids)])
                    batch_rows.append(row)
                if batch_rids:
                    columns = [[row[j] for row in batch_rows] for j in range(width)]
                    yield start, batch_rids, columns
                    start += len(batch_rids)

            try:
                for rids, cols in source:
                    if not pending and rids == expected[start : start + len(rids)]:
                        yield start, rids, cols
                        start += len(rids)
                        continue
                    for i, rid in enumerate(rids):
                        pending[rid] = tuple(column[i] for column in cols)
                    yield from drain()
                while start < len(expected):
                    if expected[start] not in pending:
                        raise StorageError(
                            f"rid {expected[start]} missing from column scan "
                            f"of {self.name!r}"
                        )
                    yield from drain()
            finally:
                snap.release()

        return batches()

    def _skipping_batches(
        self,
        snap: Any,
        expected: List[int],
        source: Iterator[Tuple[List[int], List[List[Any]]]],
        width: int,
        batch_size: int,
    ) -> Iterator[Tuple[List[int], List[int], List[List[Any]]]]:
        """Merge loop of a zone-map-skipping scan: yields ``(positions,
        rids, columns)`` with an explicit presentation-position list per
        batch (skipped pages leave holes, so a scalar start offset cannot
        describe a batch).  While heap order tracks presentation order
        (the common case) surviving batches stream straight through; after
        a positional insert/move breaks monotonicity the remainder is
        buffered and re-emitted sorted by position."""

        def batches() -> Iterator[Tuple[List[int], List[int], List[List[Any]]]]:
            pos_of = {rid: i for i, rid in enumerate(expected)}
            emitted_through = -1
            held: List[Tuple[int, int, Tuple[Any, ...]]] = []
            try:
                for rids, cols in source:
                    positions: List[int] = []
                    for rid in rids:
                        position = pos_of.get(rid)
                        if position is None:
                            raise StorageError(
                                f"rid {rid} missing from positional index "
                                f"of {self.name!r}"
                            )
                        positions.append(position)
                    if (
                        not held
                        and positions[0] > emitted_through
                        and all(a < b for a, b in zip(positions, positions[1:]))
                    ):
                        emitted_through = positions[-1]
                        yield positions, rids, cols
                        continue
                    for i, rid in enumerate(rids):
                        held.append(
                            (positions[i], rid, tuple(col[i] for col in cols))
                        )
                if held:
                    held.sort()
                    for lo in range(0, len(held), batch_size):
                        chunk = held[lo : lo + batch_size]
                        yield (
                            [position for position, _, _ in chunk],
                            [rid for _, rid, _ in chunk],
                            [[row[j] for _, _, row in chunk] for j in range(width)],
                        )
            finally:
                snap.release()

        return batches()

    def rows(self) -> List[Tuple[Any, ...]]:
        return [row for _, _, row in self.scan()]

    def find_by_key(self, key: Any) -> Optional[int]:
        """rid for a primary-key value, or None."""
        if self._pk_index is None:
            raise ExecutionError(f"table {self.name!r} has no primary key")
        return self._pk_index.get(key)

    # -- secondary indexes ----------------------------------------------------

    def index_for(self, column: str) -> Optional[TableIndex]:
        """Any index over ``column`` (unique preferred), or None."""
        column_l = column.lower()
        best: Optional[TableIndex] = None
        for index in self.indexes.values():
            if index.column.lower() == column_l:
                if index.unique:
                    return index
                best = best or index
        return best

    def create_index(self, name: str, column: str, unique: bool) -> TableIndex:
        """Build a secondary index over ``column`` from the current rows.

        Runs under the store mutation lock so the initial build and
        subsequent DML maintenance cannot interleave."""
        name_l = name.lower()
        if name_l in self.indexes:
            raise SchemaError(f"index {name!r} already exists")
        self.schema.column(column)  # raises SchemaError on unknown column
        with self.store.mutation_lock:
            index = TableIndex(name, column, unique, BPlusTree(unique=unique))
            col = self.schema.column_index(column)
            for rid in self.store.rids():
                key = self.store.get(rid)[col]
                if key is None:
                    continue
                try:
                    index.tree.insert(key, rid)
                except StorageError:
                    raise ConstraintError(
                        f"cannot create unique index {name!r}: duplicate "
                        f"key {key!r} in table {self.name!r}"
                    ) from None
            self.indexes[name_l] = index
        self._record_event(
            "index_create", index=name, column=column, unique=unique
        )
        return index

    def drop_index(self, name: str) -> TableIndex:
        name_l = name.lower()
        index = self.indexes.pop(name_l, None)
        if index is None:
            raise SchemaError(f"no such index {name!r}")
        self._record_event("index_drop", index=index.name)
        return index

    def _index_key(self, index: TableIndex, row: Sequence[Any]) -> Any:
        return row[self.schema.column_index(index.column)]

    def _index_check_insert(self, row: Sequence[Any]) -> None:
        """Unique-violation check, run *before* the store mutation so a
        rejected insert leaves no partial state."""
        for index in self.indexes.values():
            if not index.unique:
                continue
            key = self._index_key(index, row)
            if key is not None and key in index.tree:
                raise ConstraintError(
                    f"duplicate key {key!r} violates unique index "
                    f"{index.name!r} of table {self.name!r}"
                )

    def _index_insert(self, rid: int, row: Sequence[Any]) -> None:
        for index in self.indexes.values():
            key = self._index_key(index, row)
            if key is not None:
                index.tree.insert(key, rid)

    def _index_delete(self, rid: int, row: Sequence[Any]) -> None:
        for index in self.indexes.values():
            key = self._index_key(index, row)
            if key is not None:
                index.tree.delete(key, None if index.unique else rid)

    def _index_update(
        self, rid: int, old_row: Sequence[Any], new_row: Sequence[Any]
    ) -> None:
        """Re-key every index whose column changed; uniqueness was already
        vetted by :meth:`_index_check_update`."""
        for index in self.indexes.values():
            old_key = self._index_key(index, old_row)
            new_key = self._index_key(index, new_row)
            if old_key is new_key or old_key == new_key:
                continue
            if old_key is not None:
                index.tree.delete(old_key, None if index.unique else rid)
            if new_key is not None:
                index.tree.insert(new_key, rid)

    def _index_check_update(
        self, rid: int, old_row: Sequence[Any], new_row: Sequence[Any]
    ) -> None:
        for index in self.indexes.values():
            if not index.unique:
                continue
            old_key = self._index_key(index, old_row)
            new_key = self._index_key(index, new_row)
            if new_key is None or new_key == old_key:
                continue
            holder = index.tree.get(new_key)
            if holder is not None and holder != rid:
                raise ConstraintError(
                    f"duplicate key {new_key!r} violates unique index "
                    f"{index.name!r} of table {self.name!r}"
                )

    # -- writes -----------------------------------------------------------------

    def insert(
        self,
        values: Sequence[Any],
        position: Optional[int] = None,
        emit: bool = True,
        rid: Optional[int] = None,
    ) -> int:
        """Insert a row, by default appending; ``position`` inserts into the
        middle of the presentation order (paper's positional insert).
        ``rid`` restores a specific record id (rollback only)."""
        row = self._prepare_row(values)
        key = self._pk_value(row)
        if self._pk_index is not None:
            if key is None:
                raise ConstraintError(
                    f"primary key of {self.name!r} may not be NULL"
                )
            if key in self._pk_index:
                raise ConstraintError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
        self._index_check_insert(row)
        rid = self.store.insert(row, rid=rid)
        if position is None or position >= len(self.positions):
            position = len(self.positions)
            self.positions.append(rid)
        else:
            if position < 0:
                raise ExecutionError(f"negative position {position}")
            self.positions.insert_at(position, rid)
        if self._pk_index is not None:
            self._pk_index.insert(key, rid)
        self._index_insert(rid, row)
        if emit:
            self._emit(ChangeEvent(self.name, "insert", position, rid, row))
        return rid

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> List[int]:
        return [self.insert(row) for row in rows]

    def update_rid(
        self,
        rid: int,
        changes: Dict[str, Any],
        position: Optional[int] = None,
        emit: bool = True,
    ) -> Tuple[Any, ...]:
        """Update named columns of one row; returns the new full row."""
        old_row = self.store.get(rid)
        new_values = list(old_row)
        for column_name, value in changes.items():
            column = self.schema.column(column_name)
            index = self.schema.column_index(column_name)
            coerced = coerce_value(value, column.dtype)
            if coerced is None and column.not_null:
                raise ConstraintError(
                    f"column {column.name!r} of table {self.name!r} is NOT NULL"
                )
            new_values[index] = coerced
        new_row = tuple(new_values)
        old_key = self._pk_value(old_row)
        new_key = self._pk_value(new_row)
        if self._pk_index is not None and old_key != new_key:
            if new_key is None:
                raise ConstraintError(f"primary key of {self.name!r} may not be NULL")
            if new_key in self._pk_index:
                raise ConstraintError(
                    f"duplicate primary key {new_key!r} in table {self.name!r}"
                )
            self._pk_index.delete(old_key)
            self._pk_index.insert(new_key, rid)
        self._index_check_update(rid, old_row, new_row)
        self._index_update(rid, old_row, new_row)
        if len(changes) == 1:
            # Single-column update: touch only that column's group (the
            # tuple-update cost baseline for E6).
            ((column_name, _),) = changes.items()
            index = self.schema.column_index(column_name)
            self.store.update_column(rid, column_name, new_row[index])
        else:
            self.store.update(rid, new_row)
        if emit:
            self._emit(
                ChangeEvent(self.name, "update", position, rid, new_row, old_row)
            )
        return new_row

    def delete_at(self, position: int, emit: bool = True) -> Tuple[Any, ...]:
        """Delete the row at a presentation position."""
        rid = self.positions.delete_at(position)
        row = self.store.get(rid)
        if self._pk_index is not None:
            self._pk_index.delete(self._pk_value(row))
        self._index_delete(rid, row)
        self.store.delete(rid)
        if emit:
            self._emit(ChangeEvent(self.name, "delete", position, rid, None, row))
        return row

    def delete_rids(self, rids: Sequence[int], emit: bool = True) -> int:
        """Delete rows by rid (used by DELETE ... WHERE plans)."""
        doomed = set(rids)
        if not doomed:
            return 0
        # Find positions in one pass, then delete from the tail backwards so
        # earlier positions stay valid.
        pairs = [
            (position, rid)
            for position, rid in enumerate(self.positions)
            if rid in doomed
        ]
        for position, rid in reversed(pairs):
            row = self.store.get(rid)
            if self._pk_index is not None:
                self._pk_index.delete(self._pk_value(row))
            self._index_delete(rid, row)
            self.positions.delete_at(position)
            self.store.delete(rid)
            if emit:
                self._emit(ChangeEvent(self.name, "delete", position, rid, None, row))
        return len(pairs)

    # -- schema evolution ----------------------------------------------------------

    def add_column(
        self,
        column: Column,
        group_index: Optional[int] = None,
        new_group: Optional[bool] = None,
        emit: bool = True,
    ) -> int:
        """ADD COLUMN; returns pages rewritten (0 for a fresh group)."""
        rewritten = self.store.add_column(column, group_index, new_group)
        if emit:
            self._emit(ChangeEvent(self.name, "add_column", column=column.name))
        return rewritten

    def drop_column(self, name: str, emit: bool = True) -> int:
        if self.schema.primary_key is not None and name.lower() == self.schema.primary_key.lower():
            raise SchemaError(f"cannot drop primary key column {name!r}")
        rewritten = self.store.drop_column(name)
        # Indexes over the dropped column go with it (sqlite drops the
        # column's indexes the same way on table rewrite).
        doomed = [
            key
            for key, index in self.indexes.items()
            if index.column.lower() == name.lower()
        ]
        for key in doomed:
            self.indexes.pop(key)
        if emit:
            self._emit(ChangeEvent(self.name, "drop_column", column=name))
        return rewritten

    def rename_column(self, old: str, new: str, emit: bool = True) -> None:
        self.store.rename_column(old, new)
        for index in self.indexes.values():
            if index.column.lower() == old.lower():
                index.column = new
        if emit:
            self._emit(ChangeEvent(self.name, "rename_column", column=old, extra=new))

    # -- adaptive layout ---------------------------------------------------------------

    @property
    def migration_active(self) -> bool:
        return self._layout_migration is not None

    @property
    def layout_migration_target(self) -> Optional[List[List[str]]]:
        """The in-flight migration's target grouping (None when idle) —
        what persistence carries so a recovered server resumes the
        half-done migration instead of waiting for the advisor to
        re-learn it from cold statistics."""
        if self._layout_migration is None:
            return None
        return [list(group) for group in self._layout_migration.target]

    def set_auto_layout(self, enabled: bool) -> None:
        self.auto_layout = enabled

    def set_static_layout(self, mode: str) -> LayoutMigration:
        """Migrate synchronously to a static extreme (``row``/``column``)
        and suspend the advisor loop — otherwise the next maintenance
        tick would consult the same accumulated stats and migrate right
        back.  Shared by the live ``ALTER ... SET LAYOUT`` path and WAL
        replay of ``layout_set`` records, so the two cannot drift."""
        if mode == "row":
            target: List[List[str]] = [list(self.schema.column_names)]
        elif mode == "column":
            target = [[name] for name in self.schema.column_names]
        else:
            raise SchemaError(f"unknown static layout mode {mode!r}")
        self.set_auto_layout(False)
        return self.migrate_layout(target, online=False)

    def cancel_layout_migration(self) -> None:
        """Abandon any in-flight migration (the store keeps its current,
        fully consistent intermediate layout)."""
        self._layout_migration = None

    def reconcile_layout_migration(self) -> None:
        """Drop an armed migration whose (reconciled) target the store has
        already reached — needed after an externally applied restructure
        (WAL replay of a layout_step) so a migration that completed before
        a crash is not reported as still in flight."""
        if self._layout_migration is not None and self._layout_migration.done:
            self._layout_migration = None

    def migrate_layout(
        self, target_groups: Sequence[Sequence[str]], online: bool = True
    ) -> LayoutMigration:
        """Start (or, with ``online=False``, fully run) a re-partition of
        the physical layout toward ``target_groups``.  Either way the new
        target supersedes any migration already in flight — otherwise a
        later maintenance tick would keep pulling the layout toward the
        abandoned target."""
        migration = LayoutMigration(self.store, target_groups)
        if online:
            self._layout_migration = None if migration.done else migration
        else:
            self._layout_migration = None
            migration.run_to_completion()
        return migration

    def advise_layout(self) -> Optional[LayoutRecommendation]:
        return self.layout_advisor.advise(self.store)

    def layout_tick(
        self,
        steps: int = 1,
        observer: Optional[Callable[[str, str, List[List[str]]], None]] = None,
        max_blocks: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One beat of the adaptive-layout maintenance loop.

        Advances an in-flight migration by up to ``steps`` bounded
        restructure steps; otherwise (with auto layout on) consults the
        advisor and starts a migration when the predicted saving clears
        the migration cost.  Returns a small report dict for observability.

        ``max_blocks`` additionally budgets the restructure work of one
        beat: after the first step (which always runs, so a migration can
        never stall outright), further steps are taken only while the
        beat's written pages plus the next step's predicted cost stay
        within the budget.  ``None`` (the default) keeps the unbudgeted
        behaviour.

        ``observer(table_name, event, groups)`` is called with
        ``("start", target_groups)`` when the advisor launches a migration
        and ``("step", new_groups)`` after each applied restructure step —
        the hook the durable server uses to WAL-log layout transitions so
        replay converges to the live physical layout.

        The whole beat runs under the store's mutation lock: the stats
        decay, the advisor's read of those stats, and any restructure
        step form one atomic unit against concurrent DML and snapshot
        acquisition (open snapshots keep streaming the pre-step chains).
        """
        with self.store.mutation_lock:
            return self._layout_tick_locked(steps, observer, max_blocks)

    def _layout_tick_locked(
        self,
        steps: int,
        observer: Optional[Callable[[str, str, List[List[str]]], None]],
        max_blocks: Optional[int],
    ) -> Dict[str, Any]:
        report: Dict[str, Any] = {"table": self.name, "action": "idle"}
        # Age the workload window first so it keeps tracking recent
        # behaviour on every tick — including the ticks spent stepping a
        # migration (a multi-step migration must not freeze the window).
        if self.store.access_stats.total_ops > self.layout_stats_horizon:
            self.store.access_stats.decay()
        migration = self._layout_migration
        if migration is not None:
            done = False
            written_before = migration.pages_written
            for index in range(max(1, steps)):
                if index > 0 and max_blocks is not None:
                    spent = migration.pages_written - written_before
                    if spent >= max_blocks:
                        break
                    upcoming = migration.peek()
                    if upcoming is not None:
                        predicted = restructure_blocks(
                            self.schema.groups,
                            upcoming,
                            self.store.n_rows,
                            self.store.pool.page_capacity,
                        )
                        if spent + predicted > max_blocks:
                            break
                before = self.schema.groups
                done = migration.step()
                if self.schema.groups != before:
                    if observer is not None:
                        observer(self.name, "step", self.schema.groups)
                    self._record_event("migration_step", groups=self.schema.groups)
                if done:
                    break
            if done:
                self._layout_migration = None
                self._record_event(
                    "migration_finish",
                    steps=migration.steps_taken,
                    pages_written=migration.pages_written,
                )
            report.update(
                action="migrated" if done else "migrating",
                steps_taken=migration.steps_taken,
                pages_written=migration.pages_written,
                blocks_this_tick=migration.pages_written - written_before,
                groups=self.schema.groups,
            )
            if self.sanitizer.enabled:
                # Post-migration consistency: the grouping must still
                # partition the columns and the positional index must agree
                # with the store — checked after every tick that moved data.
                self.sanitizer.check_table(self)
            return report
        if self.auto_layout:
            # No migration in flight: let the encoder compact chains the
            # workload scans before consulting the advisor (whose cost
            # model then sees the measured compression ratios).
            encoded = self.store.encoding_tick() if self.auto_encode else []
            for group_index, ratio in encoded:
                self._record_event(
                    "encode_group",
                    group=group_index,
                    ratio=round(ratio, 2),
                    columns=list(self.schema.groups[group_index]),
                )
            if encoded:
                report["encoded_groups"] = [group for group, _ in encoded]
            recommendation = self.layout_advisor.advise(self.store)
            if recommendation is not None:
                self._record_event(
                    "layout_advice",
                    current_cost=recommendation.current_cost,
                    target_cost=recommendation.target_cost,
                    migration_cost=recommendation.migration_cost,
                    saving=recommendation.saving,
                    worthwhile=recommendation.worthwhile,
                    target_groups=[list(g) for g in recommendation.target_groups],
                )
            if recommendation is not None and recommendation.worthwhile:
                self._layout_migration = LayoutMigration(
                    self.store, recommendation.target_groups
                )
                if observer is not None:
                    observer(
                        self.name,
                        "start",
                        [list(g) for g in recommendation.target_groups],
                    )
                self._record_event(
                    "migration_start",
                    groups=[list(g) for g in recommendation.target_groups],
                )
                report.update(
                    action="migration_started",
                    recommendation=recommendation.to_dict(),
                )
        return report

    # -- maintenance ------------------------------------------------------------------

    def checkpoint(self) -> int:
        return self.store.checkpoint()

    def validate(self) -> None:
        self.store.validate()
        self.positions.validate()
        if len(self.positions) != self.store.n_rows:
            raise StorageError(
                f"positional index has {len(self.positions)} entries, "
                f"store has {self.store.n_rows} rows"
            )
        if self._pk_index is not None:
            self._pk_index.validate()
            if len(self._pk_index) != self.store.n_rows:
                raise StorageError("primary key index size drifted")
        for index in self.indexes.values():
            index.tree.validate()
            col = self.schema.column_index(index.column)
            non_null = sum(
                1 for rid in self.store.rids() if self.store.get(rid)[col] is not None
            )
            if len(index.tree) != non_null:
                raise StorageError(
                    f"secondary index {index.name!r} holds {len(index.tree)} "
                    f"entries for {non_null} non-null rows"
                )
