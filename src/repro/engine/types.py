"""Relational value types and the dynamic-typing bridge.

The paper (§2.2(c)) proposes "automatically assigning data types within the
databases based on the tuples".  This module supplies the relational type
lattice used for that inference, plus value coercion used by the executor
and by import/export.

The lattice (for :func:`unify_types`) is::

    NULL < BOOLEAN <  INTEGER < REAL < TEXT
                 \\______ DATE ______/

i.e. anything unifies with TEXT, NULL unifies with everything, INTEGER
widens to REAL, and mixed DATE/number falls back to TEXT.
"""

from __future__ import annotations

import datetime as _dt
import math
from enum import Enum
from typing import Any, Iterable, Optional

from repro.errors import ExecutionError

__all__ = ["DBType", "infer_type", "unify_types", "coerce_value", "compare_values", "sql_repr"]


class DBType(Enum):
    """Column types supported by the engine."""

    NULL = "NULL"
    BOOLEAN = "BOOLEAN"
    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    DATE = "DATE"

    @classmethod
    def parse(cls, name: str) -> "DBType":
        """Parse a SQL type name, accepting common aliases."""
        canon = name.strip().upper()
        aliases = {
            "INT": cls.INTEGER,
            "INTEGER": cls.INTEGER,
            "BIGINT": cls.INTEGER,
            "SMALLINT": cls.INTEGER,
            "REAL": cls.REAL,
            "FLOAT": cls.REAL,
            "DOUBLE": cls.REAL,
            "NUMERIC": cls.REAL,
            "DECIMAL": cls.REAL,
            "TEXT": cls.TEXT,
            "VARCHAR": cls.TEXT,
            "CHAR": cls.TEXT,
            "STRING": cls.TEXT,
            "BOOLEAN": cls.BOOLEAN,
            "BOOL": cls.BOOLEAN,
            "DATE": cls.DATE,
        }
        # VARCHAR(30) and friends.
        if "(" in canon:
            canon = canon[: canon.index("(")].strip()
        if canon not in aliases:
            raise ExecutionError(f"unknown SQL type {name!r}")
        return aliases[canon]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.value


def infer_type(value: Any) -> DBType:
    """Infer the relational type of one Python value."""
    if value is None:
        return DBType.NULL
    if isinstance(value, bool):
        return DBType.BOOLEAN
    if isinstance(value, int):
        return DBType.INTEGER
    if isinstance(value, float):
        return DBType.REAL
    if isinstance(value, (_dt.date, _dt.datetime)):
        return DBType.DATE
    return DBType.TEXT


_WIDENING = {
    frozenset({DBType.INTEGER, DBType.REAL}): DBType.REAL,
    frozenset({DBType.BOOLEAN, DBType.INTEGER}): DBType.INTEGER,
    frozenset({DBType.BOOLEAN, DBType.REAL}): DBType.REAL,
}


def unify_types(first: DBType, second: DBType) -> DBType:
    """Least-upper-bound of two types in the widening lattice."""
    if first is second:
        return first
    if first is DBType.NULL:
        return second
    if second is DBType.NULL:
        return first
    widened = _WIDENING.get(frozenset({first, second}))
    if widened is not None:
        return widened
    return DBType.TEXT


def infer_column_type(values: Iterable[Any]) -> DBType:
    """Infer a column type from a sample of values (paper §2.2(c))."""
    result = DBType.NULL
    for value in values:
        result = unify_types(result, infer_type(value))
        if result is DBType.TEXT:
            break
    return result


def coerce_value(value: Any, target: DBType, strict: bool = False) -> Any:
    """Coerce ``value`` to ``target``; ``None`` always passes through.

    With ``strict=False`` (the spreadsheet-friendly default) an impossible
    coercion returns the value unchanged; with ``strict=True`` it raises
    :class:`~repro.errors.ExecutionError` as a database would.
    """
    if value is None or target is DBType.NULL:
        return value
    try:
        if target is DBType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, (int, float)):
                return int(value)
            if isinstance(value, str):
                return int(float(value)) if value.strip() else None
        elif target is DBType.REAL:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value) if value.strip() else None
        elif target is DBType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return bool(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1"):
                    return True
                if lowered in ("false", "f", "0"):
                    return False
        elif target is DBType.TEXT:
            if isinstance(value, bool):
                return "TRUE" if value else "FALSE"
            if isinstance(value, float) and value.is_integer():
                return str(int(value))
            return str(value)
        elif target is DBType.DATE:
            if isinstance(value, _dt.datetime):
                return value.date()
            if isinstance(value, _dt.date):
                return value
            if isinstance(value, str):
                return _dt.date.fromisoformat(value.strip())
    except (ValueError, TypeError):
        pass
    if strict:
        raise ExecutionError(f"cannot coerce {value!r} to {target}")
    return value


# Booleans share the numeric rank so TRUE = 1 (SQL-friendly, sqlite-like).
_TYPE_ORDER = {
    DBType.NULL: 0,
    DBType.BOOLEAN: 2,
    DBType.INTEGER: 2,
    DBType.REAL: 2,
    DBType.DATE: 3,
    DBType.TEXT: 4,
}


def compare_values(left: Any, right: Any) -> Optional[int]:
    """Three-way compare with SQL semantics.

    Returns ``-1``/``0``/``1``, or ``None`` when either side is NULL
    (SQL's UNKNOWN).  Cross-type comparisons follow a total type order so
    ORDER BY is deterministic even on mixed columns (as sqlite does).
    """
    if left is None or right is None:
        return None
    left_key = _TYPE_ORDER[infer_type(left)]
    right_key = _TYPE_ORDER[infer_type(right)]
    if left_key != right_key:
        return -1 if left_key < right_key else 1
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    try:
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    except TypeError:
        left_s, right_s = str(left), str(right)
        if left_s < right_s:
            return -1
        if left_s > right_s:
            return 1
        return 0


def sql_repr(value: Any) -> str:
    """Render a Python value as a SQL literal (used for logging/round-trips)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
            return "NULL"
        return str(value)
    if isinstance(value, (_dt.date, _dt.datetime)):
        return f"'{value.isoformat()}'"
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"
