"""Table schemas with *attribute groups* and cheap evolution.

Paper §2.2 (*Support for Dynamic Schema*): adding an attribute on a
spreadsheet is as natural as adding a tuple, so the database "should be able
to handle this schema change with an efficiency similar to tuple updates".
Paper §3 (*Relational Storage Manager*): "data is structured along a
collection of attribute groups, thereby radically reducing the disk blocks
that need an update during a schema change."

A :class:`TableSchema` therefore records, besides the ordered column list,
the partition of columns into attribute groups.  The hybrid store
(:mod:`repro.engine.hybridstore`) materialises one page chain per group, so
``ADD COLUMN`` only rewrites the group the column lands in — by default a
brand-new group, touching **zero** existing blocks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.types import DBType
from repro.errors import SchemaError

__all__ = ["Column", "TableSchema"]


@dataclass
class Column:
    """One attribute of a relation."""

    name: str
    dtype: DBType = DBType.TEXT
    primary_key: bool = False
    not_null: bool = False
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.primary_key:
            self.not_null = True

    def rename(self, new_name: str) -> "Column":
        return Column(new_name, self.dtype, self.primary_key, self.not_null, self.default)


class TableSchema:
    """Ordered columns plus their partition into attribute groups.

    The *logical* column order (what ``SELECT *`` returns) is independent of
    the *physical* grouping.  ``group_of[name]`` gives the group index for a
    column; ``groups[g]`` lists the column names stored in group ``g``.
    """

    def __init__(
        self,
        columns: Sequence[Column],
        groups: Optional[Sequence[Sequence[str]]] = None,
    ):
        self._columns: List[Column] = []
        self._by_name: Dict[str, int] = {}
        for column in columns:
            self._add_column_internal(column)
        if not self._columns:
            raise SchemaError("a table needs at least one column")
        if groups is None:
            # Default physical layout: every column in one group (row store
            # behaviour) — the hybrid store overrides this when configured.
            groups = [[c.name for c in self._columns]]
        self._groups: List[List[str]] = [list(g) for g in groups if g]
        self._check_groups()

    # -- internal helpers ---------------------------------------------

    def _add_column_internal(self, column: Column) -> None:
        key = column.name.lower()
        if key in self._by_name:
            raise SchemaError(f"duplicate column {column.name!r}")
        self._by_name[key] = len(self._columns)
        self._columns.append(column)

    def _check_groups(self) -> None:
        seen = set()
        for group in self._groups:
            for name in group:
                key = name.lower()
                if key not in self._by_name:
                    raise SchemaError(f"group references unknown column {name!r}")
                if key in seen:
                    raise SchemaError(f"column {name!r} appears in two groups")
                seen.add(key)
        missing = set(self._by_name) - seen
        if missing:
            raise SchemaError(f"columns not assigned to any group: {sorted(missing)}")

    def _rebuild_names(self) -> None:
        self._by_name = {c.name.lower(): i for i, c in enumerate(self._columns)}

    # -- read API --------------------------------------------------------

    @property
    def columns(self) -> Tuple[Column, ...]:
        return tuple(self._columns)

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self._columns]

    @property
    def groups(self) -> List[List[str]]:
        return [list(g) for g in self._groups]

    @property
    def n_columns(self) -> int:
        return len(self._columns)

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    def has_column(self, name: str) -> bool:
        return name.lower() in self._by_name

    def column(self, name: str) -> Column:
        try:
            return self._columns[self._by_name[name.lower()]]
        except KeyError:
            raise SchemaError(f"no such column {name!r}") from None

    def column_index(self, name: str) -> int:
        try:
            return self._by_name[name.lower()]
        except KeyError:
            raise SchemaError(f"no such column {name!r}") from None

    def group_of(self, name: str) -> int:
        key = name.lower()
        for group_index, group in enumerate(self._groups):
            if any(member.lower() == key for member in group):
                return group_index
        raise SchemaError(f"column {name!r} not in any group")

    def group_column_indexes(self, group_index: int) -> List[int]:
        """Logical column positions of the members of one group."""
        return [self.column_index(name) for name in self._groups[group_index]]

    @property
    def primary_key(self) -> Optional[str]:
        for column in self._columns:
            if column.primary_key:
                return column.name
        return None

    def copy(self) -> "TableSchema":
        return TableSchema(
            [Column(c.name, c.dtype, c.primary_key, c.not_null, c.default) for c in self._columns],
            [list(g) for g in self._groups],
        )

    def set_groups(self, groups: Sequence[Sequence[str]]) -> None:
        """Re-partition the columns into the given attribute groups.

        Used by stores at construction time to impose a layout policy
        (row store = one group, column store = one group per column).
        """
        self._groups = [list(g) for g in groups if g]
        self._check_groups()

    # -- evolution (the cheap-schema-change API) --------------------------

    def add_column(
        self,
        column: Column,
        group_index: Optional[int] = None,
        new_group: bool = True,
    ) -> int:
        """Add a column; returns the group index it was placed in.

        ``new_group=True`` (default) appends a fresh attribute group — the
        layout under which the hybrid store makes ADD COLUMN touch no
        existing blocks.  Passing ``group_index`` co-locates the column with
        an existing group instead (the store then rewrites just that group).
        """
        self._add_column_internal(column)
        if group_index is not None:
            if not (0 <= group_index < len(self._groups)):
                self._columns.pop()
                self._rebuild_names()
                raise SchemaError(f"no group {group_index}")
            self._groups[group_index].append(column.name)
            return group_index
        if new_group or not self._groups:
            self._groups.append([column.name])
            return len(self._groups) - 1
        self._groups[-1].append(column.name)
        return len(self._groups) - 1

    def drop_column(self, name: str) -> int:
        """Drop a column; returns the group index it was removed from.

        Dropping the last member of a group removes the (now empty) group.
        """
        if not self.has_column(name):
            raise SchemaError(f"no such column {name!r}")
        if self.n_columns == 1:
            raise SchemaError("cannot drop the only column")
        group_index = self.group_of(name)
        key = name.lower()
        self._groups[group_index] = [
            member for member in self._groups[group_index] if member.lower() != key
        ]
        removed_group = False
        if not self._groups[group_index]:
            del self._groups[group_index]
            removed_group = True
        del self._columns[self._by_name[key]]
        self._rebuild_names()
        return group_index if not removed_group else group_index

    def rename_column(self, old: str, new: str) -> None:
        if not self.has_column(old):
            raise SchemaError(f"no such column {old!r}")
        if self.has_column(new) and old.lower() != new.lower():
            raise SchemaError(f"column {new!r} already exists")
        index = self.column_index(old)
        group_index = self.group_of(old)
        self._groups[group_index] = [
            new if member.lower() == old.lower() else member
            for member in self._groups[group_index]
        ]
        self._columns[index] = self._columns[index].rename(new)
        self._rebuild_names()

    # -- row helpers -----------------------------------------------------

    def split_row(self, row: Sequence[Any]) -> List[Tuple[Any, ...]]:
        """Split a logical row into per-group fragments (physical layout)."""
        if len(row) != self.n_columns:
            raise SchemaError(
                f"row has {len(row)} values, schema has {self.n_columns} columns"
            )
        fragments = []
        for group_index in range(self.n_groups):
            indexes = self.group_column_indexes(group_index)
            fragments.append(tuple(row[i] for i in indexes))
        return fragments

    def join_fragments(self, fragments: Sequence[Sequence[Any]]) -> Tuple[Any, ...]:
        """Reassemble a logical row from per-group fragments."""
        row: List[Any] = [None] * self.n_columns
        for group_index, fragment in enumerate(fragments):
            for offset, column_index in enumerate(self.group_column_indexes(group_index)):
                row[column_index] = fragment[offset]
        return tuple(row)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return self._columns == other._columns and self._groups == other._groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.dtype}" for c in self._columns)
        return f"TableSchema({cols}; groups={self._groups})"

    @classmethod
    def from_pairs(
        cls,
        pairs: Iterable[Tuple[str, DBType]],
        primary_key: Optional[str] = None,
        group_size: Optional[int] = None,
    ) -> "TableSchema":
        """Convenience constructor; ``group_size`` chunks columns into
        fixed-size attribute groups (``None`` = single group)."""
        columns = [
            Column(name, dtype, primary_key=(primary_key is not None and name == primary_key))
            for name, dtype in pairs
        ]
        groups = None
        if group_size is not None:
            if group_size <= 0:
                raise SchemaError("group_size must be positive")
            names = [c.name for c in columns]
            iterator = iter(names)
            groups = [
                list(chunk)
                for chunk in iter(lambda: list(itertools.islice(iterator, group_size)), [])
            ]
        return cls(columns, groups)
