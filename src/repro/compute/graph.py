"""Cell dependency graph.

Tracks, for every formula cell, which cells and ranges it reads.  Range
precedents (``SUM(A1:A1000)``) are kept as *subscriptions* rather than being
expanded into a thousand edges — when a cell changes, its dependents are the
union of direct edges and the subscriptions whose rectangle contains it.
Subscriptions are bucketed by tile (same geometry idea as the interface
storage manager) so a point lookup scans only nearby subscriptions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.address import CellAddress, RangeAddress
from repro.errors import CircularDependencyError

__all__ = ["CellKey", "DependencyGraph"]

#: (sheet_name, row, col) — sheet names are case-sensitive identifiers here.
CellKey = Tuple[str, int, int]

_TILE = 256


def key_of(address: CellAddress, default_sheet: str) -> CellKey:
    return (address.sheet or default_sheet, address.row, address.col)


class DependencyGraph:
    """Bidirectional formula dependency tracking."""

    def __init__(self) -> None:
        # dependent -> its direct cell precedents
        self._precedent_cells: Dict[CellKey, Set[CellKey]] = {}
        # dependent -> its range precedents
        self._precedent_ranges: Dict[CellKey, Set[Tuple[str, RangeAddress]]] = {}
        # precedent cell -> dependents
        self._dependents: Dict[CellKey, Set[CellKey]] = defaultdict(set)
        # sheet -> tile -> set of (range, dependent)
        self._range_subs: Dict[str, Dict[Tuple[int, int], Set[Tuple[RangeAddress, CellKey]]]] = (
            defaultdict(lambda: defaultdict(set))
        )
        # sheet -> tile -> set of (precedent cell, dependent): the cell-edge
        # twin of _range_subs, so structural edits can find every formula
        # whose references touch a half-space without scanning all edges.
        self._cell_subs: Dict[str, Dict[Tuple[int, int], Set[Tuple[CellKey, CellKey]]]] = (
            defaultdict(lambda: defaultdict(set))
        )

    # -- registration -----------------------------------------------------

    @staticmethod
    def _tiles_of(reference: RangeAddress) -> Iterable[Tuple[int, int]]:
        for tile_row in range(reference.start.row // _TILE, reference.end.row // _TILE + 1):
            for tile_col in range(reference.start.col // _TILE, reference.end.col // _TILE + 1):
                yield (tile_row, tile_col)

    def set_dependencies(
        self,
        dependent: CellKey,
        cells: Iterable[CellAddress],
        ranges: Iterable[RangeAddress],
        default_sheet: Optional[str] = None,
    ) -> None:
        """Replace the precedent set of ``dependent``."""
        sheet = default_sheet or dependent[0]
        self.clear_dependencies(dependent)
        cell_keys = {key_of(address, sheet) for address in cells}
        range_set: Set[Tuple[str, RangeAddress]] = {
            (reference.sheet or sheet, reference) for reference in ranges
        }
        self._attach_dependent(dependent, cell_keys, range_set)

    def clear_dependencies(self, dependent: CellKey) -> None:
        self._detach_dependent(dependent)

    def _detach_dependent(
        self, dependent: CellKey
    ) -> Tuple[Set[CellKey], Set[Tuple[str, RangeAddress]]]:
        """Remove every edge of ``dependent``; returns the precedent sets
        that were detached (so :meth:`rekey_dependents` can re-attach them
        under a new key)."""
        cells = self._precedent_cells.pop(dependent, set())
        for cell_key in cells:
            bucket = self._dependents.get(cell_key)
            if bucket is not None:
                bucket.discard(dependent)
                if not bucket:
                    del self._dependents[cell_key]
            cell_sheet_subs = self._cell_subs.get(cell_key[0])
            if cell_sheet_subs is not None:
                tile = (cell_key[1] // _TILE, cell_key[2] // _TILE)
                sub_bucket = cell_sheet_subs.get(tile)
                if sub_bucket is not None:
                    sub_bucket.discard((cell_key, dependent))
                    if not sub_bucket:
                        del cell_sheet_subs[tile]
        ranges = self._precedent_ranges.pop(dependent, set())
        for range_sheet, reference in ranges:
            sheet_subs = self._range_subs.get(range_sheet)
            if sheet_subs is None:
                continue
            for tile in self._tiles_of(reference):
                bucket = sheet_subs.get(tile)
                if bucket is not None:
                    bucket.discard((reference, dependent))
                    if not bucket:
                        del sheet_subs[tile]
        return cells, ranges

    def _attach_dependent(
        self,
        dependent: CellKey,
        cells: Set[CellKey],
        ranges: Set[Tuple[str, RangeAddress]],
    ) -> None:
        self._precedent_cells[dependent] = cells
        for cell_key in cells:
            self._dependents[cell_key].add(dependent)
            self._cell_subs[cell_key[0]][
                (cell_key[1] // _TILE, cell_key[2] // _TILE)
            ].add((cell_key, dependent))
        self._precedent_ranges[dependent] = ranges
        for range_sheet, reference in ranges:
            for tile in self._tiles_of(reference):
                self._range_subs[range_sheet][tile].add((reference, dependent))

    def rekey_dependents(self, mapping: Dict[CellKey, CellKey]) -> None:
        """Move dependents to new keys (a structural edit relocated their
        cells) *without* touching their precedent sets.  Two-phase so
        old/new key ranges may overlap (every formula below an inserted
        row shifts by the same delta)."""
        detached = []
        for old_key, new_key in mapping.items():
            if old_key in self._precedent_cells or old_key in self._precedent_ranges:
                cells, ranges = self._detach_dependent(old_key)
                detached.append((new_key, cells, ranges))
        for new_key, cells, ranges in detached:
            self._attach_dependent(new_key, cells, ranges)

    # -- queries ------------------------------------------------------------

    def dependents_of(self, key: CellKey) -> Set[CellKey]:
        """Formula cells that read ``key`` directly or via a range."""
        sheet, row, col = key
        result = set(self._dependents.get(key, ()))
        sheet_subs = self._range_subs.get(sheet)
        if sheet_subs:
            bucket = sheet_subs.get((row // _TILE, col // _TILE))
            if bucket:
                for reference, dependent in bucket:
                    if (
                        reference.start.row <= row <= reference.end.row
                        and reference.start.col <= col <= reference.end.col
                    ):
                        result.add(dependent)
        return result

    def dependents_intersecting(self, sheet: str, axis: str, at: int) -> Set[CellKey]:
        """Every dependent with at least one reference into the half-space
        ``row >= at`` (``axis='row'``) or ``col >= at`` (``axis='col'``) of
        ``sheet`` — exactly the formulas a structural edit at ``at`` must
        rewrite.  Walks only the tile buckets whose tile coordinate can
        reach the half-space, not the whole edge set."""
        index = 1 if axis == "row" else 2
        tile_floor = at // _TILE
        result: Set[CellKey] = set()
        for tile, bucket in self._cell_subs.get(sheet, {}).items():
            if tile[index - 1] < tile_floor:
                continue
            for cell_key, dependent in bucket:
                if cell_key[index] >= at:
                    result.add(dependent)
        for tile, bucket in self._range_subs.get(sheet, {}).items():
            if tile[index - 1] < tile_floor:
                continue
            for reference, dependent in bucket:
                end = reference.end.row if axis == "row" else reference.end.col
                if end >= at:
                    result.add(dependent)
        return result

    def precedents_of(self, key: CellKey) -> Tuple[Set[CellKey], Set[Tuple[str, RangeAddress]]]:
        return (
            set(self._precedent_cells.get(key, ())),
            set(self._precedent_ranges.get(key, ())),
        )

    def has_node(self, key: CellKey) -> bool:
        return key in self._precedent_cells or key in self._precedent_ranges

    # -- transitive closure ------------------------------------------------------

    def all_dependents(self, keys: Iterable[CellKey]) -> Set[CellKey]:
        """Transitive dependents of a set of changed cells (excluding the
        seeds themselves unless they also depend on another seed)."""
        result: Set[CellKey] = set()
        frontier: List[CellKey] = list(keys)
        while frontier:
            current = frontier.pop()
            for dependent in self.dependents_of(current):
                if dependent not in result:
                    result.add(dependent)
                    frontier.append(dependent)
        return result

    def check_no_cycle(self, start: CellKey) -> None:
        """DFS from ``start`` through dependents; raises on reaching
        ``start`` again.  (The compute engine also detects cycles at
        evaluation time; this is the cheap static check applied on edit.)"""
        stack = [start]
        seen: Set[CellKey] = set()
        while stack:
            current = stack.pop()
            for dependent in self.dependents_of(current):
                if dependent == start:
                    raise CircularDependencyError(
                        f"cell {start[0]}!({start[1]},{start[2]}) depends on itself"
                    )
                if dependent not in seen:
                    seen.add(dependent)
                    stack.append(dependent)

    def topo_order(self, keys: Set[CellKey]) -> List[CellKey]:
        """Order ``keys`` so precedents come before dependents (edges
        restricted to the given set; cycles raise)."""
        indegree: Dict[CellKey, int] = {key: 0 for key in keys}
        edges: Dict[CellKey, List[CellKey]] = {key: [] for key in keys}
        for key in keys:
            for dependent in self.dependents_of(key):
                if dependent in indegree:
                    edges[key].append(dependent)
                    indegree[dependent] += 1
        ready = sorted(key for key, degree in indegree.items() if degree == 0)
        order: List[CellKey] = []
        while ready:
            current = ready.pop()
            order.append(current)
            for dependent in edges[current]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(keys):
            raise CircularDependencyError("cycle detected in recalculation set")
        return order
