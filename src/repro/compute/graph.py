"""Cell dependency graph.

Tracks, for every formula cell, which cells and ranges it reads.  Range
precedents (``SUM(A1:A1000)``) are kept as *subscriptions* rather than being
expanded into a thousand edges — when a cell changes, its dependents are the
union of direct edges and the subscriptions whose rectangle contains it.
Subscriptions are bucketed by tile (same geometry idea as the interface
storage manager) so a point lookup scans only nearby subscriptions.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.address import CellAddress, RangeAddress
from repro.errors import CircularDependencyError

__all__ = ["CellKey", "DependencyGraph"]

#: (sheet_name, row, col) — sheet names are case-sensitive identifiers here.
CellKey = Tuple[str, int, int]

_TILE = 256


def key_of(address: CellAddress, default_sheet: str) -> CellKey:
    return (address.sheet or default_sheet, address.row, address.col)


class DependencyGraph:
    """Bidirectional formula dependency tracking."""

    def __init__(self) -> None:
        # dependent -> its direct cell precedents
        self._precedent_cells: Dict[CellKey, Set[CellKey]] = {}
        # dependent -> its range precedents
        self._precedent_ranges: Dict[CellKey, Set[Tuple[str, RangeAddress]]] = {}
        # precedent cell -> dependents
        self._dependents: Dict[CellKey, Set[CellKey]] = defaultdict(set)
        # sheet -> tile -> set of (range, dependent)
        self._range_subs: Dict[str, Dict[Tuple[int, int], Set[Tuple[RangeAddress, CellKey]]]] = (
            defaultdict(lambda: defaultdict(set))
        )

    # -- registration -----------------------------------------------------

    @staticmethod
    def _tiles_of(reference: RangeAddress) -> Iterable[Tuple[int, int]]:
        for tile_row in range(reference.start.row // _TILE, reference.end.row // _TILE + 1):
            for tile_col in range(reference.start.col // _TILE, reference.end.col // _TILE + 1):
                yield (tile_row, tile_col)

    def set_dependencies(
        self,
        dependent: CellKey,
        cells: Iterable[CellAddress],
        ranges: Iterable[RangeAddress],
        default_sheet: Optional[str] = None,
    ) -> None:
        """Replace the precedent set of ``dependent``."""
        sheet = default_sheet or dependent[0]
        self.clear_dependencies(dependent)
        cell_keys = {key_of(address, sheet) for address in cells}
        self._precedent_cells[dependent] = cell_keys
        for cell_key in cell_keys:
            self._dependents[cell_key].add(dependent)
        range_set: Set[Tuple[str, RangeAddress]] = set()
        for reference in ranges:
            range_sheet = reference.sheet or sheet
            range_set.add((range_sheet, reference))
            for tile in self._tiles_of(reference):
                self._range_subs[range_sheet][tile].add((reference, dependent))
        self._precedent_ranges[dependent] = range_set

    def clear_dependencies(self, dependent: CellKey) -> None:
        for cell_key in self._precedent_cells.pop(dependent, ()):
            bucket = self._dependents.get(cell_key)
            if bucket is not None:
                bucket.discard(dependent)
                if not bucket:
                    del self._dependents[cell_key]
        for range_sheet, reference in self._precedent_ranges.pop(dependent, ()):
            sheet_subs = self._range_subs.get(range_sheet)
            if sheet_subs is None:
                continue
            for tile in self._tiles_of(reference):
                bucket = sheet_subs.get(tile)
                if bucket is not None:
                    bucket.discard((reference, dependent))
                    if not bucket:
                        del sheet_subs[tile]

    # -- queries ------------------------------------------------------------

    def dependents_of(self, key: CellKey) -> Set[CellKey]:
        """Formula cells that read ``key`` directly or via a range."""
        sheet, row, col = key
        result = set(self._dependents.get(key, ()))
        sheet_subs = self._range_subs.get(sheet)
        if sheet_subs:
            bucket = sheet_subs.get((row // _TILE, col // _TILE))
            if bucket:
                for reference, dependent in bucket:
                    if (
                        reference.start.row <= row <= reference.end.row
                        and reference.start.col <= col <= reference.end.col
                    ):
                        result.add(dependent)
        return result

    def precedents_of(self, key: CellKey) -> Tuple[Set[CellKey], Set[Tuple[str, RangeAddress]]]:
        return (
            set(self._precedent_cells.get(key, ())),
            set(self._precedent_ranges.get(key, ())),
        )

    def has_node(self, key: CellKey) -> bool:
        return key in self._precedent_cells or key in self._precedent_ranges

    # -- transitive closure ------------------------------------------------------

    def all_dependents(self, keys: Iterable[CellKey]) -> Set[CellKey]:
        """Transitive dependents of a set of changed cells (excluding the
        seeds themselves unless they also depend on another seed)."""
        result: Set[CellKey] = set()
        frontier: List[CellKey] = list(keys)
        while frontier:
            current = frontier.pop()
            for dependent in self.dependents_of(current):
                if dependent not in result:
                    result.add(dependent)
                    frontier.append(dependent)
        return result

    def check_no_cycle(self, start: CellKey) -> None:
        """DFS from ``start`` through dependents; raises on reaching
        ``start`` again.  (The compute engine also detects cycles at
        evaluation time; this is the cheap static check applied on edit.)"""
        stack = [start]
        seen: Set[CellKey] = set()
        while stack:
            current = stack.pop()
            for dependent in self.dependents_of(current):
                if dependent == start:
                    raise CircularDependencyError(
                        f"cell {start[0]}!({start[1]},{start[2]}) depends on itself"
                    )
                if dependent not in seen:
                    seen.add(dependent)
                    stack.append(dependent)

    def topo_order(self, keys: Set[CellKey]) -> List[CellKey]:
        """Order ``keys`` so precedents come before dependents (edges
        restricted to the given set; cycles raise)."""
        indegree: Dict[CellKey, int] = {key: 0 for key in keys}
        edges: Dict[CellKey, List[CellKey]] = {key: [] for key in keys}
        for key in keys:
            for dependent in self.dependents_of(key):
                if dependent in indegree:
                    edges[key].append(dependent)
                    indegree[dependent] += 1
        ready = sorted(key for key, degree in indegree.items() if degree == 0)
        order: List[CellKey] = []
        while ready:
            current = ready.pop()
            order.append(current)
            for dependent in edges[current]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(keys):
            raise CircularDependencyError("cycle detected in recalculation set")
        return order
