"""The compute engine (paper §3).

"By using ideas like shared computation, the compute engine enables
efficient handling of formulae and queries with positional referencing ...
It performs computations asynchronously, free from a user's context ...
It further improves the interface's interactivity by prioritizing the
computation for visible cells."

* :mod:`repro.compute.graph` — cell-level dependency graph with range
  subscriptions and cycle detection,
* :mod:`repro.compute.scheduler` — two-level priority recalculation queue
  (visible cells first, background work after),
* :mod:`repro.compute.engine` — orchestration: dirty propagation, demand
  evaluation, lazy background draining.
"""

from repro.compute.graph import CellKey, DependencyGraph
from repro.compute.scheduler import RecalcScheduler
from repro.compute.engine import ComputeEngine, ComputeStats

__all__ = ["CellKey", "DependencyGraph", "RecalcScheduler", "ComputeEngine", "ComputeStats"]
