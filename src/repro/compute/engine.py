"""The compute engine: dirty propagation + demand evaluation + lazy drain.

Wiring (kept free of circular imports): the engine talks to its *host* — in
practice :class:`repro.core.workbook.Workbook` — through the small
:class:`ComputeHost` interface.  The host stores cells; the engine decides
*when* and *in what order* formulas are (re)computed:

* an edit marks the cell's transitive dependents dirty,
* visible dirty cells are recomputed first (``recalc_visible``), the rest
  lazily in background steps (``background_step``) — paper §2.2(d,e),
* reading a dirty cell (demand evaluation) recomputes it on the spot, so
  results are always consistent regardless of scheduling,
* cycles render ``#CIRC!`` into every participating cell.

``ComputeStats.evaluations`` counts formula executions — the metric E7 uses
to show that time-to-visible work is proportional to the window, not to the
sheet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.compute.graph import CellKey, DependencyGraph
from repro.compute.scheduler import RecalcScheduler
from repro.core.address import CellAddress, RangeAddress
from repro.errors import CircularDependencyError, FormulaError, FormulaEvalError, FormulaSyntaxError
from repro.formula.dependency import extract_dependencies
from repro.formula.evaluator import EvalContext, RangeValues, evaluate_formula
from repro.formula.nodes import FormulaNode
from repro.formula.parser import parse_formula

__all__ = ["ComputeHost", "ComputeEngine", "ComputeStats"]


class ComputeHost:
    """Callbacks the engine needs from the spreadsheet layer."""

    def read_value(self, key: CellKey) -> Any:
        raise NotImplementedError

    def write_value(self, key: CellKey, value: Any) -> None:
        raise NotImplementedError

    def write_error(self, key: CellKey, code: str) -> None:
        raise NotImplementedError

    def call_extension(self, name: str, args: List[Any], at: CellKey) -> Any:
        raise FormulaEvalError(f"unknown function {name}", "#NAME?")


@dataclass
class ComputeStats:
    evaluations: int = 0
    demand_evaluations: int = 0
    scheduled_evaluations: int = 0
    errors: int = 0
    cycles: int = 0
    #: formula (re)parses via register_formula — the logical-work metric
    #: bench_structural_edits uses to show edits no longer reparse the world.
    reparses: int = 0

    def reset(self) -> None:
        self.evaluations = 0
        self.demand_evaluations = 0
        self.scheduled_evaluations = 0
        self.errors = 0
        self.cycles = 0
        self.reparses = 0


class _EngineEvalContext(EvalContext):
    """Resolves references by demanding values from the engine."""

    def __init__(self, engine: "ComputeEngine", base_sheet: str, at: CellKey):
        self._engine = engine
        self._base_sheet = base_sheet
        self._at = at

    def cell_value(self, address: CellAddress) -> Any:
        sheet = address.sheet or self._base_sheet
        return self._engine.demand_value((sheet, address.row, address.col))

    def range_values(self, reference: RangeAddress) -> RangeValues:
        sheet = reference.sheet or self._base_sheet
        grid: List[List[Any]] = []
        for row in range(reference.start.row, reference.end.row + 1):
            grid.append(
                [
                    self._engine.demand_value((sheet, row, col))
                    for col in range(reference.start.col, reference.end.col + 1)
                ]
            )
        return RangeValues(grid)

    def call_extension(self, name: str, args: List[Any]) -> Any:
        return self._engine.host.call_extension(name, args, self._at)


class ComputeEngine:
    """Owns the dependency graph, the scheduler, and evaluation."""

    def __init__(self, host: ComputeHost, eager: bool = True):
        self.host = host
        self.graph = DependencyGraph()
        self.scheduler = RecalcScheduler()
        self.stats = ComputeStats()
        self.eager = eager
        self._formulas: Dict[CellKey, FormulaNode] = {}
        # sheet -> formula keys on it, so structural edits enumerate only
        # the edited sheet's formulas (not the whole workbook's).
        self._formulas_by_sheet: Dict[str, Set[CellKey]] = {}
        self._eval_stack: List[CellKey] = []

    # -- formula registration ------------------------------------------------

    def register_formula(self, key: CellKey, source: str) -> None:
        """Install (or replace) a formula at ``key`` and schedule it.

        Raises :class:`FormulaSyntaxError` on parse failure (the host keeps
        the raw text and shows an error) and renders ``#CIRC!`` if the new
        edge set closes a cycle.
        """
        node = parse_formula(source)
        self.stats.reparses += 1
        precedents = extract_dependencies(node, base_sheet=key[0])
        self._formulas[key] = node
        self._formulas_by_sheet.setdefault(key[0], set()).add(key)
        self.graph.set_dependencies(key, precedents.cells, precedents.ranges)
        self.scheduler.mark_dirty(key)
        self._mark_dependents_dirty(key)
        if self.eager and not self._eval_stack:
            self.drain()

    def unregister_formula(self, key: CellKey) -> None:
        if self._formulas.pop(key, None) is not None:
            bucket = self._formulas_by_sheet.get(key[0])
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._formulas_by_sheet[key[0]]
        self.graph.clear_dependencies(key)
        self.scheduler.discard(key)

    def has_formula(self, key: CellKey) -> bool:
        return key in self._formulas

    def formula_keys(self) -> List[CellKey]:
        return list(self._formulas)

    def formula_keys_on_sheet(self, sheet: str) -> List[CellKey]:
        return list(self._formulas_by_sheet.get(sheet, ()))

    @property
    def n_formulas(self) -> int:
        return len(self._formulas)

    # -- structural-edit support ---------------------------------------------

    def rekey_formulas(self, mapping: Dict[CellKey, CellKey]) -> None:
        """Relocate registered formulas to new keys without reparsing or
        touching their dependency edges (a structural edit moved their
        cells; their *text* is handled separately, and only when the
        references actually changed).  Two-phase so old/new ranges may
        overlap.  Dirty marks travel with the formula."""
        if not mapping:
            return
        moved = {
            old_key: self._formulas.pop(old_key)
            for old_key in mapping
            if old_key in self._formulas
        }
        for old_key in moved:
            self._formulas_by_sheet[old_key[0]].discard(old_key)
        for old_key, node in moved.items():
            new_key = mapping[old_key]
            self._formulas[new_key] = node
            self._formulas_by_sheet.setdefault(new_key[0], set()).add(new_key)
        self.graph.rekey_dependents({old: mapping[old] for old in moved})
        dirty_moves = [old for old in moved if self.scheduler.is_dirty(old)]
        for old_key in dirty_moves:
            self.scheduler.discard(old_key)
        for old_key in dirty_moves:
            self.scheduler.mark_dirty(mapping[old_key])

    def invalidate_formula(self, key: CellKey) -> None:
        """Schedule ``key`` (and its transitive dependents) without
        re-registering — used when a formula's *inputs* moved but its text
        is untouched (e.g. a DBSQL anchor whose SQL-level precedent
        shifted)."""
        if key in self._formulas:
            self.scheduler.mark_dirty(key)
        self._mark_dependents_dirty(key)

    def drop_formula(self, key: CellKey) -> None:
        """Unregister ``key`` after marking its dependents dirty — the
        structural-edit path for formulas whose cell was deleted (or whose
        references died): readers of the now-#REF! cell must recompute."""
        self._mark_dependents_dirty(key)
        self.unregister_formula(key)

    # -- change notification ------------------------------------------------------

    def on_value_changed(self, key: CellKey) -> None:
        """A plain value was edited: schedule every transitive dependent.

        Re-entrancy guard: when called from inside an evaluation (e.g. a
        DBSQL spill writing result cells), the dependents are only marked —
        the outer drain loop picks them up."""
        self._mark_dependents_dirty(key)
        if self.eager and not self._eval_stack:
            self.drain()

    def on_values_changed(self, keys: List[CellKey]) -> None:
        for key in keys:
            self._mark_dependents_dirty(key)
        if self.eager and not self._eval_stack:
            self.drain()

    def _mark_dependents_dirty(self, key: CellKey) -> None:
        for dependent in self.graph.all_dependents([key]):
            if dependent in self._formulas:
                self.scheduler.mark_dirty(dependent)

    # -- evaluation ----------------------------------------------------------------

    def demand_value(self, key: CellKey) -> Any:
        """Value of a cell, recomputing first if it is a dirty formula."""
        if key in self._formulas:
            if key in self._eval_stack:
                # Demanding a cell that is currently being evaluated: the
                # chain closed on itself.  _evaluate raises and renders
                # #CIRC! into every cycle member.
                self._evaluate(key)
            if self.scheduler.is_dirty(key):
                self.stats.demand_evaluations += 1
                self._evaluate(key)
                self.scheduler.discard(key)
        return self.host.read_value(key)

    def _evaluate(self, key: CellKey) -> None:
        if key in self._eval_stack:
            cycle = self._eval_stack[self._eval_stack.index(key):]
            self.stats.cycles += 1
            for member in cycle:
                self.host.write_error(member, "#CIRC!")
                self.scheduler.discard(member)
            raise CircularDependencyError(
                " -> ".join(f"{s}!({r},{c})" for s, r, c in cycle + [key])
            )
        node = self._formulas.get(key)
        if node is None:
            return
        self._eval_stack.append(key)
        try:
            context = _EngineEvalContext(self, key[0], key)
            value = evaluate_formula(node, context)
            if isinstance(value, RangeValues):
                # A bare range formula displays its single value or #VALUE!.
                if value.n_rows == 1 and value.n_cols == 1:
                    value = value.grid[0][0]
                else:
                    raise FormulaEvalError("range result in a single cell")
            self.host.write_value(key, value)
            self.stats.evaluations += 1
        except CircularDependencyError:
            raise
        except FormulaEvalError as error:
            self.stats.errors += 1
            self.host.write_error(key, error.code)
        finally:
            self._eval_stack.pop()

    def _evaluate_scheduled(self, key: CellKey) -> None:
        self.stats.scheduled_evaluations += 1
        try:
            self._evaluate(key)
        except CircularDependencyError:
            pass  # cells already marked #CIRC!

    # -- scheduling modes -----------------------------------------------------------

    def set_visible_predicate(self, predicate) -> None:
        self.scheduler.set_visible_predicate(predicate)

    def recalc_visible(self) -> int:
        """Drain only the visible dirty cells; returns count computed."""
        computed = 0
        while True:
            key = self.scheduler.pop_visible()
            if key is None:
                return computed
            self._evaluate_scheduled(key)
            computed += 1

    def background_step(self, budget: int = 32) -> int:
        """Compute up to ``budget`` pending cells (visible first); returns
        count computed.  This is the 'async' slice a UI thread would run
        between interactions (paper §2.2(e))."""
        computed = 0
        while computed < budget:
            key = self.scheduler.pop()
            if key is None:
                break
            self._evaluate_scheduled(key)
            computed += 1
        return computed

    def drain(self) -> int:
        """Compute everything pending (eager mode)."""
        computed = 0
        while True:
            key = self.scheduler.pop()
            if key is None:
                return computed
            self._evaluate_scheduled(key)
            computed += 1

    @property
    def pending(self) -> int:
        return self.scheduler.pending

    def reset(self) -> None:
        """Forget every formula and dependency (used after structural
        edits, when the workbook re-registers all formulas at their new
        addresses).  Stats and the visible predicate survive."""
        predicate = self.scheduler._visible
        self.graph = DependencyGraph()
        self.scheduler = RecalcScheduler(predicate)
        self._formulas.clear()
        self._formulas_by_sheet.clear()
        self._eval_stack.clear()
