"""Prioritised recalculation scheduling.

Paper §2.2(e): "the calculations of the visible cells should be prioritized
and the remaining long running computations should be performed in
background."

The scheduler is a two-level priority queue over dirty formula cells:
priority 0 for cells inside the current viewport, priority 1 for the rest.
The viewport predicate is re-applied at pop time, so scrolling between
steps re-prioritises pending work without rebuilding the queue.  FIFO order
within a level keeps the schedule deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.compute.graph import CellKey

__all__ = ["RecalcScheduler", "union_predicate"]

VisiblePredicate = Callable[[CellKey], bool]


def union_predicate(predicates: List[VisiblePredicate]) -> VisiblePredicate:
    """A predicate that is true where *any* member predicate is true.

    The multi-session server uses this to drive visible-first recalc over
    N client viewports at once: a cell inside any session's pane is
    priority-0.  The member list is captured by reference — callers may
    pass a live list and mutate it as sessions open/close/scroll."""

    def visible(key: CellKey) -> bool:
        return any(predicate(key) for predicate in predicates)

    return visible


class RecalcScheduler:
    """Dirty-cell queue with visible-first ordering."""

    PRIORITY_VISIBLE = 0
    PRIORITY_BACKGROUND = 1

    def __init__(self, visible: Optional[VisiblePredicate] = None):
        self._visible = visible or (lambda key: False)
        self._heap: List[Tuple[int, int, CellKey]] = []
        self._dirty: Set[CellKey] = set()
        self._sequence = itertools.count()
        self.scheduled = 0
        self.popped_visible = 0
        self.popped_background = 0

    def set_visible_predicate(self, predicate: VisiblePredicate) -> None:
        self._visible = predicate

    # -- enqueue -----------------------------------------------------------

    def mark_dirty(self, key: CellKey) -> None:
        if key in self._dirty:
            return
        self._dirty.add(key)
        priority = (
            self.PRIORITY_VISIBLE if self._visible(key) else self.PRIORITY_BACKGROUND
        )
        heapq.heappush(self._heap, (priority, next(self._sequence), key))
        self.scheduled += 1

    def mark_many(self, keys) -> None:
        for key in keys:
            self.mark_dirty(key)

    def is_dirty(self, key: CellKey) -> bool:
        return key in self._dirty

    def discard(self, key: CellKey) -> None:
        """Remove a cell from the dirty set (it was computed on demand)."""
        self._dirty.discard(key)

    # -- dequeue -------------------------------------------------------------

    def pop(self) -> Optional[CellKey]:
        """Next dirty cell, visible ones first; None when drained."""
        while self._heap:
            priority, _, key = heapq.heappop(self._heap)
            if key not in self._dirty:
                continue  # stale entry (computed on demand or re-queued)
            # Re-evaluate visibility: the viewport may have moved since the
            # cell was queued.  A now-visible background entry is promoted;
            # a stale visible entry is demoted (each key moves at most once
            # per direction, so this terminates).
            currently_visible = self._visible(key)
            if priority == self.PRIORITY_BACKGROUND and currently_visible:
                heapq.heappush(
                    self._heap,
                    (self.PRIORITY_VISIBLE, next(self._sequence), key),
                )
                continue
            if priority == self.PRIORITY_VISIBLE and not currently_visible:
                heapq.heappush(
                    self._heap,
                    (self.PRIORITY_BACKGROUND, next(self._sequence), key),
                )
                continue
            self._dirty.discard(key)
            if currently_visible:
                self.popped_visible += 1
            else:
                self.popped_background += 1
            return key
        return None

    def pop_visible(self) -> Optional[CellKey]:
        """Next dirty *visible* cell, or None if no visible work remains."""
        while self._heap:
            priority, sequence, key = self._heap[0]
            if key not in self._dirty:
                heapq.heappop(self._heap)
                continue
            if self._visible(key):
                heapq.heappop(self._heap)
                self._dirty.discard(key)
                self.popped_visible += 1
                return key
            if priority == self.PRIORITY_VISIBLE:
                # Stale visible entry for a cell that scrolled out: demote.
                heapq.heappop(self._heap)
                heapq.heappush(
                    self._heap,
                    (self.PRIORITY_BACKGROUND, next(self._sequence), key),
                )
                continue
            return None  # heap top is background and not visible
        return None

    # -- state ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._dirty)

    def pending_keys(self) -> Set[CellKey]:
        return set(self._dirty)

    def has_visible_work(self) -> bool:
        return any(self._visible(key) for key in self._dirty)

    def reset_stats(self) -> None:
        self.scheduled = 0
        self.popped_visible = 0
        self.popped_background = 0

    def clear(self) -> None:
        """Forget all pending work *and* the schedule counters — a
        cleared scheduler belongs to a fresh workbook state, so stats
        must not bleed across resets."""
        self._heap.clear()
        self._dirty.clear()
        self.reset_stats()
