"""Baseline file: grandfathered findings the analyzer tolerates.

One tab-separated line per accepted finding::

    CODE<TAB>path<TAB>symbol<TAB># one-line justification

The key deliberately omits the line number (see
:class:`repro.analysis.core.Diagnostic.key`) so unrelated edits that shift
code around do not invalidate the baseline.  ``python -m repro.analysis
--baseline`` regenerates the file from the current findings, preserving
the justification of every entry that survives; brand-new entries get a
``TODO: justify`` marker that a reviewer is expected to replace.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.core import Diagnostic

__all__ = [
    "DEFAULT_BASELINE_FILE",
    "BaselineEntry",
    "load_baseline",
    "write_baseline",
    "partition",
]

DEFAULT_BASELINE_FILE = "ANALYSIS_BASELINE.txt"

_HEADER = """\
# repro.analysis baseline — grandfathered findings, one per line:
#   CODE<TAB>path<TAB>symbol<TAB># justification
# Regenerate with: PYTHONPATH=src python -m repro.analysis --baseline src
# Entries whose finding disappeared are dropped on regeneration.
"""


@dataclass(frozen=True)
class BaselineEntry:
    code: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> str:
        return f"{self.code}\t{self.path}\t{self.symbol}"

    def render(self) -> str:
        note = self.justification or "TODO: justify"
        return f"{self.code}\t{self.path}\t{self.symbol}\t# {note}"


def load_baseline(path: str) -> Dict[str, BaselineEntry]:
    """Key → entry; a missing file is an empty baseline, not an error."""
    entries: Dict[str, BaselineEntry] = {}
    if not os.path.isfile(path):
        return entries
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            fields = line.split("\t")
            if len(fields) < 3:
                continue
            code, diag_path, symbol = fields[0], fields[1], fields[2]
            justification = ""
            if len(fields) > 3:
                justification = fields[3].lstrip().lstrip("#").strip()
            entry = BaselineEntry(code, diag_path, symbol, justification)
            entries[entry.key] = entry
    return entries


def write_baseline(
    path: str,
    diagnostics: Sequence[Diagnostic],
    existing: Dict[str, BaselineEntry],
) -> List[BaselineEntry]:
    """Regenerate the baseline from ``diagnostics``, keeping the
    justification of every entry that is still a live finding."""
    entries: List[BaselineEntry] = []
    seen = set()
    for diag in diagnostics:
        if diag.key in seen:
            continue
        seen.add(diag.key)
        kept = existing.get(diag.key)
        entries.append(
            BaselineEntry(
                diag.code,
                diag.path,
                diag.symbol,
                kept.justification if kept is not None else "",
            )
        )
    entries.sort(key=lambda e: (e.path, e.code, e.symbol))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_HEADER)
        for entry in entries:
            handle.write(entry.render() + "\n")
    return entries


def partition(
    diagnostics: Sequence[Diagnostic],
    baseline: Dict[str, BaselineEntry],
) -> Tuple[List[Diagnostic], List[Diagnostic], List[BaselineEntry]]:
    """``(new, grandfathered, stale)``: findings not in the baseline,
    findings covered by it, and baseline entries no longer observed."""
    new: List[Diagnostic] = []
    grandfathered: List[Diagnostic] = []
    observed = set()
    for diag in diagnostics:
        observed.add(diag.key)
        if diag.key in baseline:
            grandfathered.append(diag)
        else:
            new.append(diag)
    stale = [entry for key, entry in baseline.items() if key not in observed]
    return new, grandfathered, stale
