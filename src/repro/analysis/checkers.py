"""The RC0xx checkers — one engine invariant each.

=======  ====================================================================
code     invariant
=======  ====================================================================
RC001    WAL replay / recovery / snapshot-restore call paths must be
         deterministic: no wall clock, no unseeded randomness, no iteration
         over unordered sets (call-graph walk from the recovery entry
         points).
RC002    All page I/O flows through the buffer pool: no direct
         ``DiskManager`` ``read``/``write``/``allocate``/``free`` calls
         outside ``pager.py`` (direct calls bypass per-group tag
         accounting, silently under-counting I/O stats).
RC003    The WAL op vocabulary is one registry: every name in ``OP_TYPES``
         has a ``validate_op`` arm and an ``apply_op`` arm, and the WAL
         module's ``TXN_MARKERS`` stay inside the registry.  (Snapshot
         coverage is structural: snapshots persist the whole workbook, so
         apply coverage implies snapshot coverage.)
RC004    Pull metrics collectors read only attributes that exist on the
         counter structs they scrape (constructor-assignment type
         propagation; unresolvable receivers are skipped, never guessed).
RC005    No swallowed exceptions: an ``except Exception:`` / bare
         ``except:`` handler must re-raise or record a structured EventLog
         entry.
RC006    Store methods of a thaw-capable class that mutate ``.records`` of
         a pooled page must thaw first (``_thaw_page`` / ``_find_slot``)
         or carry the explicit ``"enc"`` guard.
RC007    Lock discipline: in a class that owns a mutation lock, methods
         mutating the guarded shared structures (``_chains``,
         ``_rid_page``, ``_frames``, ``_pins``) must take the lock
         (``with self._mutation_lock`` / ``with self._lock`` /
         ``with ....mutation_lock``) or declare the caller-holds-lock
         contract in their docstring (``__init__`` is exempt — the
         object is not yet shared).
RC008    Index-maintenance completeness: in a class that owns secondary
         indexes (``self.indexes``), every method reachable from the WAL
         replay interpreter (``apply_op``) that calls a row-mutating
         store primitive (``store.insert`` / ``update`` /
         ``update_column`` / ``delete``) must also invoke an
         ``_index_*`` maintenance helper — otherwise a DML path leaves
         registered indexes stale (deliberate exceptions are baselined).
=======  ====================================================================
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import reachable
from repro.analysis.core import (
    Diagnostic,
    Module,
    ProjectIndex,
    own_nodes,
    register,
    walk_scoped,
)

__all__ = ["REPLAY_ENTRY_POINTS"]


# ---------------------------------------------------------------------------
# RC001 — replay determinism
# ---------------------------------------------------------------------------

#: Recovery/replay roots: every definition carrying one of these names
#: seeds the call-graph walk.
REPLAY_ENTRY_POINTS = (
    "recover_state",      # service: snapshot + committed WAL suffix
    "apply_op",           # service: the replay interpreter
    "read_wal",           # wal: record scan
    "committed_ops",      # wal: the replay rule
    "load_workbook",      # persist + SnapshotStore.load_workbook
    "workbook_from_dict", # persist: snapshot restore
    "restore_encodings",  # store: snapshot restore of page encodings
    "restore_group_io",   # store: snapshot restore of per-group I/O
)

#: ``module.attr`` calls that read the environment nondeterministically.
_NONDET_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("os", "urandom"),
    ("os", "getpid"),
    ("uuid", "uuid1"),
    ("uuid", "uuid4"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}


def _nondet_call(call: ast.Call) -> Optional[str]:
    """The dotted name of a nondeterministic call, or None."""
    func = call.func
    if not isinstance(func, ast.Attribute) or not isinstance(func.value, ast.Name):
        return None
    base, attr = func.value.id, func.attr
    if (base, attr) in _NONDET_CALLS:
        return f"{base}.{attr}"
    if base == "random":
        if attr != "Random":
            return f"random.{attr}"
        if not call.args and not call.keywords:
            return "random.Random()"  # unseeded; a seeded Random is deterministic
    return None


def _unordered_iteration(node: ast.For) -> bool:
    """Iterating a set display / comprehension / bare ``set(...)`` call —
    the textbook hash-order dependence (``sorted(...)`` wrappers pass)."""
    source = node.iter
    if isinstance(source, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(source, ast.Call)
        and isinstance(source.func, ast.Name)
        and source.func.id in ("set", "frozenset")
    )


@register("RC001", "replay determinism")
def check_replay_determinism(index: ProjectIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for info in reachable(index, REPLAY_ENTRY_POINTS):
        for node in own_nodes(info.node):
            if isinstance(node, ast.Call):
                name = _nondet_call(node)
                if name is not None:
                    out.append(
                        Diagnostic(
                            "RC001",
                            info.module.path,
                            node.lineno,
                            f"{info.scope}:{name}",
                            f"{name}() in {info.scope}, reachable from a "
                            "replay entry point — recovery must be "
                            "deterministic",
                        )
                    )
            elif isinstance(node, ast.For) and _unordered_iteration(node):
                out.append(
                    Diagnostic(
                        "RC001",
                        info.module.path,
                        node.lineno,
                        f"{info.scope}:set-iteration",
                        f"iteration over an unordered set in {info.scope}, "
                        "reachable from a replay entry point — wrap in "
                        "sorted() for a stable order",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# RC002 — pager discipline
# ---------------------------------------------------------------------------

_DISK_METHODS = ("read", "write", "allocate", "free")


@register("RC002", "pager discipline")
def check_pager_discipline(index: ProjectIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for module in index.modules:
        if module.path.endswith("pager.py"):
            continue  # the pool's own delegation lives here
        for scope, node in walk_scoped(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in _DISK_METHODS:
                continue
            receiver = func.value
            is_disk = (
                isinstance(receiver, ast.Attribute) and receiver.attr == "disk"
            ) or (isinstance(receiver, ast.Name) and receiver.id == "disk")
            if is_disk:
                out.append(
                    Diagnostic(
                        "RC002",
                        module.path,
                        node.lineno,
                        f"{scope or '<module>'}:disk.{func.attr}",
                        f"direct DiskManager.{func.attr}() call — page I/O "
                        "must go through the BufferPool so per-group tag "
                        "stats are charged",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# RC003 — WAL op-registry completeness
# ---------------------------------------------------------------------------


def _module_string_tuples(tree: ast.Module) -> Dict[str, Tuple[str, ...]]:
    """Module-level ``NAME = ("a", "b", ...)`` assignments of strings."""
    result: Dict[str, Tuple[str, ...]] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if not isinstance(value, (ast.Tuple, ast.List)):
            continue
        items = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                items.append(element.value)
            else:
                break
        else:
            result[target.id] = tuple(items)
    return result


def _handled_ops(
    fn: ast.AST, registry: Sequence[str], tuples: Dict[str, Tuple[str, ...]]
) -> Set[str]:
    """Op names a validate/apply function references: string literals plus
    any module-level string tuple it names (``_STRUCTURAL`` etc.)."""
    known = set(registry)
    handled: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in known:
                handled.add(node.value)
        elif isinstance(node, ast.Name) and node.id in tuples:
            handled.update(name for name in tuples[node.id] if name in known)
    return handled


@register("RC003", "WAL op-registry completeness")
def check_op_registry(index: ProjectIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    registries: List[Tuple[Module, Tuple[str, ...]]] = []
    for module in index.modules:
        tuples = _module_string_tuples(module.tree)
        op_types = tuples.get("OP_TYPES")
        if op_types is None:
            continue
        defs = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        if "validate_op" not in defs or "apply_op" not in defs:
            continue
        registries.append((module, op_types))
        for fn_name in ("validate_op", "apply_op"):
            fn = defs[fn_name]
            missing = [
                op for op in op_types
                if op not in _handled_ops(fn, op_types, tuples)
            ]
            for op in missing:
                out.append(
                    Diagnostic(
                        "RC003",
                        module.path,
                        fn.lineno,
                        f"{fn_name}:{op}",
                        f"op type {op!r} is registered in OP_TYPES but has "
                        f"no arm in {fn_name} — replay would reject or "
                        "misapply it",
                    )
                )
    # Cross-module: transaction markers declared next to the WAL replay
    # rule must be registered op types, or recovery and validation disagree.
    for module, op_types in registries:
        registry = set(op_types)
        for other in index.modules:
            markers = _module_string_tuples(other.tree).get("TXN_MARKERS")
            if markers is None:
                continue
            for marker in markers:
                if marker not in registry:
                    out.append(
                        Diagnostic(
                            "RC003",
                            other.path,
                            1,
                            f"TXN_MARKERS:{marker}",
                            f"WAL marker {marker!r} is not in OP_TYPES — "
                            "validate_op would refuse to log it",
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# RC004 — metrics-collector drift
# ---------------------------------------------------------------------------


class _ClassInfo:
    def __init__(self, module: Module, node: ast.ClassDef):
        self.module = module
        self.node = node
        self.bases = [
            base.id for base in node.bases if isinstance(base, ast.Name)
        ]


def _collect_classes(index: ProjectIndex) -> Dict[str, _ClassInfo]:
    classes: Dict[str, _ClassInfo] = {}
    for module in index.modules:
        for _, node in walk_scoped(module.tree):
            if isinstance(node, ast.ClassDef):
                classes[node.name] = _ClassInfo(module, node)
    return classes


def _class_attrs(
    classes: Dict[str, _ClassInfo], name: str, _seen: Optional[Set[str]] = None
) -> Set[str]:
    """Every attribute name a class observably has: methods, class-body
    assignments, dataclass fields, ``__slots__``, and ``self.X = ...``
    in any of its methods — plus everything from resolvable bases."""
    seen = _seen if _seen is not None else set()
    if name in seen or name not in classes:
        return set()
    seen.add(name)
    info = classes[name]
    attrs: Set[str] = set()
    for item in info.node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            attrs.add(item.name)
            for node in ast.walk(item):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.add(target.attr)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    attrs.add(target.id)
                    if target.id == "__slots__" and isinstance(
                        item.value, (ast.Tuple, ast.List)
                    ):
                        for element in item.value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                attrs.add(element.value)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            attrs.add(item.target.id)  # dataclass field
    for base in info.bases:
        attrs |= _class_attrs(classes, base, seen)
    return attrs


def _ctor_types(
    classes: Dict[str, _ClassInfo]
) -> Dict[Tuple[str, str], str]:
    """``(class, attr) -> class``: attributes assigned a bare constructor
    call (``self.stats = WalStats()``) anywhere in the class's methods."""
    result: Dict[Tuple[str, str], str] = {}
    for name, info in classes.items():
        for item in info.node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(item):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = node.value
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in classes
                ):
                    result[(name, target.attr)] = value.func.id
    return result


def _resolve_attr_type(
    node: ast.expr,
    owner: str,
    classes: Dict[str, _ClassInfo],
    ctor: Dict[Tuple[str, str], str],
    env: Dict[str, str],
) -> Optional[str]:
    """Best-effort static type of an expression inside a method of
    ``owner``; None whenever any step is not a tracked constructor
    assignment (the skip-don't-guess rule)."""
    if isinstance(node, ast.Name):
        if node.id == "self":
            return owner
        return env.get(node.id)
    if isinstance(node, ast.Attribute):
        base = _resolve_attr_type(node.value, owner, classes, ctor, env)
        if base is None:
            return None
        resolved = ctor.get((base, node.attr))
        if resolved is not None:
            return resolved
        if base in classes:  # inherited constructor assignments
            for base_name in classes[base].bases:
                resolved = ctor.get((base_name, node.attr))
                if resolved is not None:
                    return resolved
        return None
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in classes
    ):
        return node.func.id
    return None


def _collector_methods(
    index: ProjectIndex, classes: Dict[str, _ClassInfo]
) -> List[Tuple[Module, str, ast.FunctionDef]]:
    """(module, owning class, method) for every pull collector: methods
    registered via ``register_collector(self._x)`` plus the ``_collect*``
    naming convention."""
    registered_names: Set[str] = set()
    for module in index.modules:
        for _, node in walk_scoped(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register_collector"
            ):
                for arg in node.args:
                    if isinstance(arg, ast.Attribute):
                        registered_names.add(arg.attr)
                    elif isinstance(arg, ast.Name):
                        registered_names.add(arg.id)
    out: List[Tuple[Module, str, ast.FunctionDef]] = []
    for name, info in sorted(classes.items()):
        for item in info.node.body:
            if isinstance(item, ast.FunctionDef) and (
                item.name in registered_names or item.name.startswith("_collect")
            ):
                out.append((info.module, name, item))
    return out


@register("RC004", "metrics-collector drift")
def check_collector_drift(index: ProjectIndex) -> List[Diagnostic]:
    classes = _collect_classes(index)
    ctor = _ctor_types(classes)
    attr_cache: Dict[str, Set[str]] = {}

    def attrs_of(name: str) -> Set[str]:
        if name not in attr_cache:
            attr_cache[name] = _class_attrs(classes, name)
        return attr_cache[name]

    out: List[Diagnostic] = []
    for module, owner, method in _collector_methods(index, classes):
        env: Dict[str, str] = {}
        # one linear pass: record local constructor-typed assignments, then
        # check every attribute read against the receiver's attribute set
        for node in own_nodes(method):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    resolved = _resolve_attr_type(
                        node.value, owner, classes, ctor, env
                    )
                    if resolved is not None:
                        env[target.id] = resolved
        for node in own_nodes(method):
            if not isinstance(node, ast.Attribute):
                continue
            base = _resolve_attr_type(node.value, owner, classes, ctor, env)
            if base is None or base not in classes:
                continue
            if node.attr not in attrs_of(base):
                out.append(
                    Diagnostic(
                        "RC004",
                        module.path,
                        node.lineno,
                        f"{owner}.{method.name}:{base}.{node.attr}",
                        f"collector {owner}.{method.name} reads "
                        f"{base}.{node.attr}, but {base} has no such "
                        "attribute — the scrape would raise at runtime",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# RC005 — exception swallowing
# ---------------------------------------------------------------------------


def _is_broad(handler: ast.ExceptHandler) -> Optional[str]:
    """The caught-too-much name ('', 'Exception', 'BaseException')."""
    if handler.type is None:
        return "bare except"
    names = []
    if isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    elif isinstance(handler.type, ast.Tuple):
        names = [e.id for e in handler.type.elts if isinstance(e, ast.Name)]
    for name in names:
        if name in ("Exception", "BaseException"):
            return f"except {name}"
    return None


@register("RC005", "exception swallowing")
def check_exception_swallowing(index: ProjectIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for module in index.modules:
        counters: Dict[str, int] = {}
        for scope, node in walk_scoped(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _is_broad(node)
            if caught is None:
                continue
            reraises = records = False
            for child in node.body:
                for sub in [child, *own_nodes(child)]:
                    if isinstance(sub, ast.Raise):
                        reraises = True
                    elif (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "record"
                    ):
                        records = True
            if reraises or records:
                continue
            where = scope or "<module>"
            index_in_scope = counters.get(where, 0)
            counters[where] = index_in_scope + 1
            out.append(
                Diagnostic(
                    "RC005",
                    module.path,
                    node.lineno,
                    f"{where}:handler{index_in_scope}",
                    f"{caught} in {where} neither re-raises nor records an "
                    "EventLog entry — the failure vanishes",
                )
            )
    return out


# ---------------------------------------------------------------------------
# RC006 — frozen-group mutation
# ---------------------------------------------------------------------------

_MUTATORS = ("append", "extend", "insert", "remove", "pop", "clear", "sort")
_THAW_HELPERS = ("_thaw_page", "_find_slot")


def _records_of(node: ast.expr, pooled: Set[str]) -> bool:
    """``<var>.records`` where var came from a pool ``get``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "records"
        and isinstance(node.value, ast.Name)
        and node.value.id in pooled
    )


def _pooled_vars(method: ast.AST) -> Set[str]:
    """Names assigned from a ``....pool.get(...)`` call, plus aliases."""
    pooled: Set[str] = set()
    assigns: List[Tuple[str, ast.expr]] = []
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assigns.append((target.id, node.value))
    for name, value in assigns:
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
        ):
            receiver = value.func.value
            mentions_pool = any(
                (isinstance(part, ast.Name) and part.id == "pool")
                or (isinstance(part, ast.Attribute) and part.attr == "pool")
                for part in ast.walk(receiver)
            )
            if mentions_pool:
                pooled.add(name)
    # one alias pass (page = last); flow-insensitive on purpose
    for name, value in assigns:
        if isinstance(value, ast.Name) and value.id in pooled:
            pooled.add(name)
    return pooled


@register("RC006", "frozen-group mutation")
def check_frozen_mutation(index: ProjectIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for module in index.modules:
        for _, node in walk_scoped(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            method_names = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "_thaw_page" not in method_names:
                continue
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                pooled = _pooled_vars(method)
                if not pooled:
                    continue
                first_mutation: Optional[ast.AST] = None
                for sub in ast.walk(method):
                    mutated = False
                    if isinstance(sub, ast.Call) and isinstance(
                        sub.func, ast.Attribute
                    ):
                        mutated = sub.func.attr in _MUTATORS and _records_of(
                            sub.func.value, pooled
                        )
                    elif isinstance(sub, (ast.Assign, ast.AugAssign)):
                        targets = (
                            sub.targets
                            if isinstance(sub, ast.Assign)
                            else [sub.target]
                        )
                        for target in targets:
                            if _records_of(target, pooled) or (
                                isinstance(target, ast.Subscript)
                                and _records_of(target.value, pooled)
                            ):
                                mutated = True
                    elif isinstance(sub, ast.Delete):
                        for target in sub.targets:
                            if isinstance(target, ast.Subscript) and _records_of(
                                target.value, pooled
                            ):
                                mutated = True
                    if mutated and first_mutation is None:
                        first_mutation = sub
                if first_mutation is None:
                    continue
                thaws = any(
                    isinstance(sub, ast.Call)
                    and (
                        (
                            isinstance(sub.func, ast.Attribute)
                            and sub.func.attr in _THAW_HELPERS
                        )
                        or (
                            isinstance(sub.func, ast.Name)
                            and sub.func.id in _THAW_HELPERS
                        )
                    )
                    for sub in ast.walk(method)
                )
                guards = any(
                    isinstance(sub, ast.Constant) and sub.value == "enc"
                    for sub in ast.walk(method)
                )
                if not thaws and not guards:
                    out.append(
                        Diagnostic(
                            "RC006",
                            module.path,
                            first_mutation.lineno,
                            f"{node.name}.{method.name}:records-mutation",
                            f"{node.name}.{method.name} mutates .records of "
                            "a pooled page without _thaw_page/_find_slot or "
                            'an "enc" guard — an encoded page would be '
                            "corrupted in place",
                        )
                    )
    return out


# ---------------------------------------------------------------------------
# RC007 — lock discipline
# ---------------------------------------------------------------------------

#: Shared structures the HTAP refactor guards with a mutation lock:
#: store chain maps and rid directories, buffer-pool frames and pins.
_GUARDED_ATTRS = ("_chains", "_rid_page", "_frames", "_pins")

#: Lock attribute names a class may own.
_LOCK_NAMES = ("_mutation_lock", "_lock")

#: Docstring phrases that declare the caller-holds-the-lock contract.
_LOCK_CONTRACTS = ("mutation lock", "lock held", "caller holds")


def _guarded_self_attr(node: ast.expr) -> Optional[str]:
    """``self.<guarded>`` (directly or as subscript base), else None."""
    if isinstance(node, ast.Subscript):
        return _guarded_self_attr(node.value)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and node.attr in _GUARDED_ATTRS
    ):
        return node.attr
    return None


def _mutates_guarded(node: ast.AST) -> Optional[str]:
    """The guarded attribute this statement/expression mutates, or None.

    Covers rebinds and item assignment (``self._chains[i] = ...``),
    augmented assignment, ``del self._frames[...]``, and mutator method
    calls (``self._chains.append(...)``, ``self._pins.pop(...)``)."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            attr = _guarded_self_attr(target)
            if attr is not None:
                return attr
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = _guarded_self_attr(target)
            if attr is not None:
                return attr
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in (*_MUTATORS, "popitem", "setdefault", "update"):
            attr = _guarded_self_attr(node.func.value)
            if attr is not None:
                return attr
            # one-level indirection: self._chains[i].append(...) and
            # self._rid_page[g][rid] = ... mutate the guarded container's
            # *contents*, which the lock protects just the same
            receiver = node.func.value
            if isinstance(receiver, ast.Subscript):
                attr = _guarded_self_attr(receiver.value)
                if attr is not None:
                    return attr
    return None


def _takes_lock(method: ast.AST) -> bool:
    """True when the method body contains ``with <lock>`` over one of the
    owned lock names or any ``...mutation_lock`` attribute (e.g. the
    table layer's ``with self.store.mutation_lock``)."""
    for node in ast.walk(method):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Attribute) and (
                expr.attr in _LOCK_NAMES or expr.attr.endswith("mutation_lock")
            ):
                return True
    return False


def _declares_lock_contract(method: ast.AST) -> bool:
    doc = ast.get_docstring(method) or ""
    lowered = doc.lower()
    return any(phrase in lowered for phrase in _LOCK_CONTRACTS)


# ---------------------------------------------------------------------------
# RC008 — index-maintenance completeness
# ---------------------------------------------------------------------------

#: Store primitives that change row contents (and therefore index keys).
_ROW_MUTATORS = ("insert", "update", "update_column", "delete")


def _store_mutator_call(node: ast.AST) -> Optional[ast.Call]:
    """A ``<anything>.store.<row-mutator>(...)`` call, else None."""
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return None
    if node.func.attr not in _ROW_MUTATORS:
        return None
    receiver = node.func.value
    if isinstance(receiver, ast.Attribute) and receiver.attr == "store":
        return node
    return None


def _calls_index_helper(method: ast.AST) -> bool:
    """True when the method invokes any ``_index_*`` maintenance helper
    (directly or via ``self.``)."""
    for node in ast.walk(method):
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name is not None and name.startswith("_index_"):
                return True
    return False


@register("RC008", "index-maintenance completeness")
def check_index_maintenance(index: ProjectIndex) -> List[Diagnostic]:
    """Every store-mutation path reachable from ``apply_op`` must keep
    the owning class's secondary indexes maintained.

    Reachability is the same name-based over-approximation RC001 uses:
    a flagged method *might* run during replay, which is the safe
    direction — a missed index update silently returns wrong rows."""
    reachable_nodes = {
        id(info.node) for info in reachable(index, ("apply_op",))
    }
    out: List[Diagnostic] = []
    for module in index.modules:
        for _, node in walk_scoped(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = [
                item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            owns_indexes = any(
                isinstance(sub, ast.Assign)
                and any(
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr == "indexes"
                    for target in sub.targets
                )
                for method in methods
                for sub in ast.walk(method)
            )
            if not owns_indexes:
                continue
            for method in methods:
                if method.name == "__init__" or method.name.startswith("_index_"):
                    continue  # construction / the helpers themselves
                if id(method) not in reachable_nodes:
                    continue
                mutator: Optional[ast.Call] = None
                for sub in ast.walk(method):
                    mutator = _store_mutator_call(sub)
                    if mutator is not None:
                        break
                if mutator is None:
                    continue
                if _calls_index_helper(method):
                    continue
                out.append(
                    Diagnostic(
                        "RC008",
                        module.path,
                        mutator.lineno,
                        f"{node.name}.{method.name}:store-mutation",
                        f"{node.name}.{method.name} mutates rows via "
                        f"store.{mutator.func.attr}() without calling an "
                        "_index_* maintenance helper — registered secondary "
                        "indexes would go stale on this path",
                    )
                )
    return out


@register("RC007", "lock discipline")
def check_lock_discipline(index: ProjectIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for module in index.modules:
        for _, node in walk_scoped(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = [
                item
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
            owns_lock = any(
                isinstance(sub, ast.Assign)
                and any(
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in _LOCK_NAMES
                    for target in sub.targets
                )
                for method in methods
                for sub in ast.walk(method)
            )
            if not owns_lock:
                continue
            for method in methods:
                if method.name == "__init__":
                    continue  # not shared yet; also where the lock is born
                mutated: Optional[str] = None
                lineno = method.lineno
                for sub in ast.walk(method):
                    attr = _mutates_guarded(sub)
                    if attr is not None:
                        mutated = attr
                        lineno = getattr(sub, "lineno", method.lineno)
                        break
                if mutated is None:
                    continue
                if _takes_lock(method) or _declares_lock_contract(method):
                    continue
                out.append(
                    Diagnostic(
                        "RC007",
                        module.path,
                        lineno,
                        f"{node.name}.{method.name}:{mutated}",
                        f"{node.name}.{method.name} mutates self.{mutated} "
                        "without taking the mutation lock or declaring the "
                        "caller-holds-lock contract in its docstring — a "
                        "concurrent snapshot scan or maintenance beat could "
                        "observe the structure mid-update",
                    )
                )
    return out
