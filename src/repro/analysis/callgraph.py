"""Name-based call-graph reachability over a :class:`ProjectIndex`.

Python's dynamism rules out sound call resolution without running the
code, so RC001 uses the standard lint compromise: a call to ``x.foo(...)``
or ``foo(...)`` may reach *any* function or method named ``foo`` anywhere
in the index.  That over-approximates reachability — which is the safe
direction for a determinism checker: a nondeterministic call is flagged if
it *might* be reachable from a replay entry point, and the baseline
absorbs the deliberate cases.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

from repro.analysis.core import Module, ProjectIndex, walk_scoped

__all__ = ["DefInfo", "collect_defs", "reachable"]


@dataclass
class DefInfo:
    """One function/method definition and where it lives."""

    module: Module
    scope: str                 # dotted scope inside the module, e.g. "EventLog.record"
    node: ast.AST              # FunctionDef / AsyncFunctionDef

    @property
    def simple_name(self) -> str:
        return self.scope.rsplit(".", 1)[-1]

    @property
    def qualname(self) -> str:
        return f"{self.module.name}.{self.scope}"


def collect_defs(index: ProjectIndex) -> Dict[str, List[DefInfo]]:
    """Simple name → every definition carrying it (methods, functions,
    nested closures alike)."""
    by_name: Dict[str, List[DefInfo]] = {}
    for module in index.modules:
        for scope, node in walk_scoped(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # walk_scoped's scope for a def node already ends in its name
                by_name.setdefault(node.name, []).append(DefInfo(module, scope, node))
    return by_name


def _called_names(node: ast.AST) -> Set[str]:
    """Every simple name this definition's body could be calling."""
    names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Name):
                names.add(func.id)
            elif isinstance(func, ast.Attribute):
                names.add(func.attr)
    return names


def reachable(
    index: ProjectIndex, entry_names: Iterable[str]
) -> List[DefInfo]:
    """Every definition reachable (by name) from the entry points.

    ``entry_names`` are simple names; all definitions carrying one of them
    are seeds.  Returns a deterministic (module path, scope) ordering."""
    by_name = collect_defs(index)
    worklist: List[DefInfo] = []
    seen: Set[int] = set()

    def push(candidates: Sequence[DefInfo]) -> None:
        for info in candidates:
            if id(info.node) not in seen:
                seen.add(id(info.node))
                worklist.append(info)

    for name in entry_names:
        push(by_name.get(name, []))

    result: List[DefInfo] = []
    while worklist:
        info = worklist.pop()
        result.append(info)
        for name in _called_names(info.node):
            push(by_name.get(name, []))
    result.sort(key=lambda i: (i.module.path, i.scope))
    return result
