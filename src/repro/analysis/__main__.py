"""CLI: ``python -m repro.analysis [--baseline] [paths...]``.

Exit status: 0 when every finding is covered by the baseline, 1 when new
findings exist (they are printed), 2 on usage errors.  ``--baseline``
regenerates the baseline file from the current findings instead (keeping
existing justifications) and always exits 0 — review the diff before
committing it.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_FILE,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.core import analyze_paths, registered_checkers


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Engine-invariant static checks (RC001..RC006).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline", action="store_true",
        help="regenerate the baseline file from the current findings",
    )
    parser.add_argument(
        "--baseline-file", default=DEFAULT_BASELINE_FILE,
        help=f"baseline path (default: {DEFAULT_BASELINE_FILE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: print and fail on every finding",
    )
    parser.add_argument(
        "--select", action="append", metavar="CODE",
        help="run only these checker codes (repeatable)",
    )
    parser.add_argument(
        "--list-codes", action="store_true",
        help="print the checker code table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_codes:
        for code, (title, _) in registered_checkers().items():
            print(f"{code}  {title}")
        return 0

    diagnostics = analyze_paths(args.paths, codes=args.select)

    if args.baseline:
        existing = load_baseline(args.baseline_file)
        entries = write_baseline(args.baseline_file, diagnostics, existing)
        todo = sum(1 for entry in entries if not entry.justification)
        print(
            f"wrote {len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
            f"to {args.baseline_file}"
            + (f" ({todo} still need a justification)" if todo else "")
        )
        return 0

    baseline = {} if args.no_baseline else load_baseline(args.baseline_file)
    if args.select:
        # A partial run cannot judge entries for checkers it did not run.
        selected = set(args.select)
        baseline = {
            key: entry for key, entry in baseline.items()
            if entry.code in selected
        }
    new, grandfathered, stale = partition(diagnostics, baseline)
    for diag in new:
        print(diag.render())
    for entry in stale:
        print(f"stale baseline entry (finding gone): {entry.key}", file=sys.stderr)
    summary = (
        f"{len(new)} new finding(s), {len(grandfathered)} baselined, "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
    )
    print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
