"""Runtime invariant sanitizer — the dynamic half of :mod:`repro.analysis`.

``Database(sanitize=True)`` (or ``REPRO_SANITIZE=1`` in the environment)
threads a :class:`Sanitizer` through the pager, store, table, WAL and
service layers.  Hot call sites gate on ``sanitizer.enabled`` so the
default :data:`NULL_SANITIZER` costs one attribute load + boolean test —
the same fast-path shape as the tracer's ``_NULL_SPAN``.

What it asserts (each check is cheap relative to the operation it rides):

* **encoded-page freshness** — a page carrying an ``"enc"`` header must
  hold no plain records; one means a frozen group was mutated without
  ``_thaw_page``.  Checked on every buffer-pool fetch and write-back, so
  the corruption surfaces at the next page touch.
* **batch rid lockstep** — every column fragment of an emitted batch must
  be exactly as long as its rid list, rids unique; covering chains that
  disagree on rid order raise instead of silently degrading to per-rid
  directory lookups.
* **WAL append integrity** — the log's tracked end offset must equal the
  physical file size at every append (drift means a truncate/append race
  or an external writer), and LSNs stay dense on replay.
* **post-migration consistency** — after a ``layout_tick`` that moved
  data, the grouping must still partition the schema's columns and the
  positional index must agree with the store's row count
  (``Table.validate`` does the deep walk; migrations are rare enough to
  afford it).
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.errors import DataSpreadError, SanitizerError

__all__ = ["NullSanitizer", "Sanitizer", "NULL_SANITIZER"]


class NullSanitizer:
    """No-op fast path; every check site first tests ``enabled``."""

    enabled = False

    def check_page(self, page: Any) -> None:
        """Encoded-page freshness (pager fetch/write-back)."""

    def check_batch(self, rids: Sequence[int], columns: Sequence[Any]) -> None:
        """rid-alignment of one emitted batch."""

    def lockstep_mismatch(
        self, group_index: int, driver_rids: Sequence[int], other_rids: Sequence[int]
    ) -> None:
        """Covering chains disagreed on rid order."""

    def check_zone_count(self, page_id: int, cached: int, actual: int) -> None:
        """Cached zone-map record count vs the page's real count."""

    def check_zone(
        self, page_id: int, offset: int, zone: Any, values: Sequence[Any]
    ) -> None:
        """Cached (min, max, null_count) zone vs decoded page contents."""

    def check_wal_append(self, lsn: int, tracked_offset: int, file_size: int) -> None:
        """Append-time offset/LSN integrity."""

    def check_replay_lsns(self, lsns: Sequence[int]) -> None:
        """Replayed records must be dense and ascending."""

    def check_table(self, table: Any) -> None:
        """Post-migration grouping + positional-index consistency."""


#: Shared instance wired in everywhere by default — sanitize-off pays only
#: the ``enabled`` test at each site.
NULL_SANITIZER = NullSanitizer()


class Sanitizer(NullSanitizer):
    """The armed variant: counts checks, raises :class:`SanitizerError`."""

    enabled = True

    def __init__(self) -> None:
        self.checks = 0
        self.failures = 0

    def _fail(self, message: str) -> None:
        self.failures += 1
        raise SanitizerError(f"sanitizer: {message}")

    # -- pager ---------------------------------------------------------------

    def check_page(self, page: Any) -> None:
        self.checks += 1
        enc = page.header.get("enc")
        if enc is None:
            return
        if page.records:
            self._fail(
                f"page {page.page_id} carries an 'enc' header but holds "
                f"{len(page.records)} plain record(s) — a frozen group was "
                "mutated without _thaw_page"
            )
        rids = enc.get("rids")
        cols = enc.get("cols")
        if rids is None or cols is None:
            self._fail(
                f"page {page.page_id} has a malformed 'enc' header "
                "(missing rids/cols)"
            )

    # -- store scans ---------------------------------------------------------

    def check_batch(self, rids: Sequence[int], columns: Sequence[Any]) -> None:
        self.checks += 1
        n = len(rids)
        if len(set(rids)) != n:
            self._fail(
                f"batch carries {n} rids but only {len(set(rids))} are "
                "distinct — duplicate rows in one batch"
            )
        for offset, column in enumerate(columns):
            if column is not None and len(column) != n:
                self._fail(
                    f"batch column {offset} holds {len(column)} values for "
                    f"{n} rids — fragments are out of rid alignment"
                )

    def lockstep_mismatch(
        self, group_index: int, driver_rids: Sequence[int], other_rids: Sequence[int]
    ) -> None:
        self.checks += 1
        self._fail(
            f"group {group_index} chain lost rid lockstep with the driver "
            f"chain (driver starts {list(driver_rids[:4])}, group yields "
            f"{list(other_rids[:4])}) — the chains no longer agree on row "
            "order"
        )

    # -- zone maps -----------------------------------------------------------

    def check_zone_count(self, page_id: int, cached: int, actual: int) -> None:
        self.checks += 1
        if cached != actual:
            self._fail(
                f"page {page_id} zone map caches {cached} records but the "
                f"page holds {actual} — a mutation bypassed invalidation"
            )

    def check_zone(
        self, page_id: int, offset: int, zone: Any, values: Sequence[Any]
    ) -> None:
        """A cached zone must *cover* the page: every non-null value within
        [min, max] and the null count exact.  A zone that excludes a live
        value could skip a matching row — the one corruption data skipping
        cannot tolerate."""
        self.checks += 1
        lo, hi, nulls = zone
        seen_nulls = 0
        for value in values:
            if value is None:
                seen_nulls += 1
                continue
            try:
                below = lo is None or value < lo
                above = hi is None or value > hi
            except TypeError:
                self._fail(
                    f"page {page_id} offset {offset} zone ({lo!r}, {hi!r}) "
                    f"does not order against stored value {value!r}"
                )
            if below or above:
                self._fail(
                    f"page {page_id} offset {offset} zone ({lo!r}, {hi!r}) "
                    f"excludes stored value {value!r} — a skipping scan "
                    "would drop a live row"
                )
        if seen_nulls != nulls:
            self._fail(
                f"page {page_id} offset {offset} zone claims {nulls} nulls "
                f"but the page holds {seen_nulls}"
            )

    # -- WAL -----------------------------------------------------------------

    def check_wal_append(self, lsn: int, tracked_offset: int, file_size: int) -> None:
        self.checks += 1
        if lsn < 1:
            self._fail(f"append would assign non-positive LSN {lsn}")
        if tracked_offset != file_size:
            self._fail(
                f"WAL tracked end offset {tracked_offset} != physical file "
                f"size {file_size} before appending LSN {lsn} — offset "
                "drift (concurrent writer or missed truncation)"
            )

    def check_replay_lsns(self, lsns: Sequence[int]) -> None:
        self.checks += 1
        previous = 0
        for lsn in lsns:
            if lsn != previous + 1:
                self._fail(
                    f"replay saw LSN {lsn} after {previous} — the committed "
                    "history is not dense"
                )
            previous = lsn

    # -- layout maintenance --------------------------------------------------

    def check_table(self, table: Any) -> None:
        self.checks += 1
        seen: List[str] = []
        for group in table.schema.groups:
            seen.extend(name.lower() for name in group)
        expected = [name.lower() for name in table.schema.column_names]
        if sorted(seen) != sorted(expected):
            self._fail(
                f"table {table.name!r} grouping {table.schema.groups} does "
                f"not partition its columns {table.schema.column_names}"
            )
        if len(table.positions) != table.store.n_rows:
            self._fail(
                f"table {table.name!r} positional index holds "
                f"{len(table.positions)} entries for {table.store.n_rows} "
                "stored rows after migration"
            )
        try:
            table.validate()
        except DataSpreadError as error:
            self._fail(
                f"post-migration validation failed for table "
                f"{table.name!r}: {error}"
            )
