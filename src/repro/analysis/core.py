"""Framework for the engine-invariant static checkers.

Zero-dependency, AST-based: a :class:`ProjectIndex` parses every ``.py``
file under the requested paths once, each registered checker walks the
shared index and returns :class:`Diagnostic` records with a stable
``RC0xx`` code.  Diagnostics are keyed by ``(code, path, symbol)`` — the
*symbol* is a line-independent fingerprint (enclosing scope + offending
construct) so a committed baseline survives unrelated edits that shift
line numbers.

Checkers live in :mod:`repro.analysis.checkers`; the baseline workflow in
:mod:`repro.analysis.baseline`; the CLI in ``python -m repro.analysis``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Diagnostic",
    "Module",
    "ProjectIndex",
    "register",
    "registered_checkers",
    "run_checks",
    "analyze_paths",
    "walk_scoped",
    "own_nodes",
]


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a location, and a baseline fingerprint."""

    code: str     # "RC001" .. "RC006"
    path: str     # path relative to the analysis root, forward slashes
    line: int     # 1-based line of the offending node
    symbol: str   # line-independent fingerprint (scope:construct)
    message: str

    @property
    def key(self) -> str:
        """The baseline identity — deliberately excludes the line number."""
        return f"{self.code}\t{self.path}\t{self.symbol}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


@dataclass
class Module:
    """One parsed source file."""

    path: str        # display path (relative to the analysis root)
    name: str        # dotted module name, best-effort (fixtures get the stem)
    tree: ast.Module


class ProjectIndex:
    """Every module of one analysis run, parsed once and shared."""

    def __init__(self, modules: Sequence[Module]):
        self.modules: List[Module] = list(modules)
        self.by_name: Dict[str, Module] = {m.name: m for m in self.modules}

    @classmethod
    def load(cls, paths: Sequence[str], root: Optional[str] = None) -> "ProjectIndex":
        """Parse every ``.py`` file under ``paths`` (files or directories).

        ``root`` anchors the display paths (defaults to the current
        directory) so baseline keys are stable no matter where the caller
        sits relative to the files."""
        base = os.path.abspath(root) if root else os.getcwd()
        files: List[str] = []
        for path in paths:
            full = os.path.abspath(path)
            if os.path.isfile(full):
                files.append(full)
                continue
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        modules = []
        for filename in files:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source, filename=filename)
            except SyntaxError:
                continue  # not our job; the interpreter will complain
            display = os.path.relpath(filename, base)
            if display.startswith(".."):
                display = filename
            modules.append(
                Module(display.replace(os.sep, "/"), _module_name(filename), tree)
            )
        return cls(modules)


def _module_name(filename: str) -> str:
    """Dotted module name by walking up through ``__init__.py`` packages."""
    directory, basename = os.path.split(os.path.abspath(filename))
    parts = [] if basename == "__init__.py" else [basename[:-3]]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else os.path.splitext(basename)[0]


# ---------------------------------------------------------------------------
# AST walking helpers shared by the checkers
# ---------------------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def walk_scoped(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(scope, node)`` for every node, where ``scope`` is the
    dotted chain of enclosing class/function names ('' at module level)."""

    def visit(node: ast.AST, scope: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                inner = f"{scope}.{child.name}" if scope else child.name
                yield inner, child
                yield from visit(child, inner)
            else:
                yield scope, child
                yield from visit(child, scope)

    yield from visit(tree, "")


def own_nodes(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested function or
    class definitions (those are separate scopes with their own rules)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _SCOPE_NODES):
            continue
        yield child
        yield from own_nodes(child)


# ---------------------------------------------------------------------------
# Checker registry
# ---------------------------------------------------------------------------

CheckerFn = Callable[[ProjectIndex], List[Diagnostic]]

_REGISTRY: Dict[str, Tuple[str, CheckerFn]] = {}


def register(code: str, title: str) -> Callable[[CheckerFn], CheckerFn]:
    """Class decorator-style registration: ``@register("RC001", "...")``."""

    def wrap(fn: CheckerFn) -> CheckerFn:
        _REGISTRY[code] = (title, fn)
        return fn

    return wrap


def registered_checkers() -> Dict[str, Tuple[str, CheckerFn]]:
    import repro.analysis.checkers  # noqa: F401  (registration side effect)

    return dict(sorted(_REGISTRY.items()))


def run_checks(
    index: ProjectIndex, codes: Optional[Iterable[str]] = None
) -> List[Diagnostic]:
    wanted: Optional[Set[str]] = set(codes) if codes is not None else None
    out: List[Diagnostic] = []
    for code, (_, fn) in registered_checkers().items():
        if wanted is not None and code not in wanted:
            continue
        out.extend(fn(index))
    out.sort(key=lambda d: (d.path, d.line, d.code, d.symbol))
    return out


def analyze_paths(
    paths: Sequence[str],
    codes: Optional[Iterable[str]] = None,
    root: Optional[str] = None,
) -> List[Diagnostic]:
    """Parse ``paths`` and run the (optionally filtered) checkers."""
    return run_checks(ProjectIndex.load(paths, root=root), codes)
