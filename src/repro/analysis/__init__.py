"""Correctness tooling: static engine-invariant checkers + runtime sanitizer.

Static half (``python -m repro.analysis [--baseline] [paths]``): six
AST-based checkers with stable ``RC0xx`` codes walk the source tree and
report invariant violations; a committed baseline file grandfathers the
deliberate ones.  See :mod:`repro.analysis.checkers` for the code table.

Dynamic half: :class:`~repro.analysis.sanitizer.Sanitizer`, installed by
``Database(sanitize=True)`` or ``REPRO_SANITIZE=1`` — cheap invariant
assertions on the pager/store/WAL/layout hot paths behind a null-object
fast path.
"""

from repro.analysis.baseline import (
    DEFAULT_BASELINE_FILE,
    BaselineEntry,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.core import (
    Diagnostic,
    ProjectIndex,
    analyze_paths,
    registered_checkers,
    run_checks,
)
from repro.analysis.sanitizer import NULL_SANITIZER, NullSanitizer, Sanitizer

__all__ = [
    "Diagnostic",
    "ProjectIndex",
    "analyze_paths",
    "registered_checkers",
    "run_checks",
    "DEFAULT_BASELINE_FILE",
    "BaselineEntry",
    "load_baseline",
    "partition",
    "write_baseline",
    "NullSanitizer",
    "Sanitizer",
    "NULL_SANITIZER",
]
