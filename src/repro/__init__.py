"""DataSpread reproduction: unifying databases and spreadsheets.

A full Python reimplementation of the system described in

    Bendre, Sun, Zhang, Zhou, Chang, Parameswaran.
    "DataSpread: Unifying Databases and Spreadsheets." PVLDB 8(12), 2015.

Quick start::

    from repro import Workbook

    wb = Workbook()
    wb.execute("CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT)")
    wb.execute("INSERT INTO actors VALUES (1, 'Weaver'), (2, 'Ford')")
    wb.set("Sheet1", "B1", 2)
    wb.dbsql("Sheet1", "B3",
             "SELECT name FROM actors WHERE actorid = RANGEVALUE(B1)")
    assert wb.get("Sheet1", "B3") == "Ford"

Architecture map (paper Figure 1 → packages):

====================================  =====================================
Figure 1 component                    package
====================================  =====================================
spreadsheet interface                 :mod:`repro.core` (Workbook/Sheet)
interface manager                     :mod:`repro.core.context` / ``sync``
interface storage manager             :mod:`repro.interface_storage`
query processor (positional-aware)    :mod:`repro.engine.planner`/``executor``
positional index                      :mod:`repro.index`
compute engine                        :mod:`repro.compute`
relational storage manager (hybrid)   :mod:`repro.engine` stores
====================================  =====================================

Beyond the paper's demo scope, :mod:`repro.server` turns the in-process
workbook into a durable multi-session service (write-ahead log, snapshot
compaction, optimistic concurrency, viewport-scoped broadcast).
"""

from repro.core.address import CellAddress, RangeAddress, column_index, column_label
from repro.core.cell import Cell, CellKind
from repro.core.persist import load_workbook, save_workbook
from repro.core.render import render_range, render_window
from repro.core.sheet import Sheet
from repro.core.workbook import Workbook
from repro.engine.database import Database, ResultSet
from repro.engine.schema import Column, TableSchema
from repro.engine.store import LayoutPolicy
from repro.engine.types import DBType
from repro.errors import DataSpreadError
from repro.server import WorkbookService

__version__ = "1.0.0"

__all__ = [
    "Workbook",
    "Sheet",
    "save_workbook",
    "load_workbook",
    "render_window",
    "render_range",
    "Database",
    "ResultSet",
    "CellAddress",
    "RangeAddress",
    "column_index",
    "column_label",
    "Cell",
    "CellKind",
    "Column",
    "TableSchema",
    "DBType",
    "LayoutPolicy",
    "WorkbookService",
    "DataSpreadError",
    "__version__",
]
