"""Per-statement span tracer for the query and server apply pipelines.

A trace is a tree of :class:`Span` objects, each with a wall-clock
duration and a small dict of counters (rows_scanned, cols_read,
pages_read, cache hits/misses, ...).  The tracer is *off by default*:
when no trace is active, :meth:`Tracer.span` hands back one shared
no-op context manager, so the instrumentation points scattered through
``Database.execute``/``WorkbookService.apply`` cost a single attribute
check plus a falsy branch.

Two kinds of children:

* **timed phase spans** (``with tracer.span("parse"): ...``) measure a
  pipeline stage with ``perf_counter``,
* **annotation spans** (:meth:`Span.annotate_child`) are zero-duration
  accounting nodes — used for the plan-operator tree and the pager
  rollup, where the interesting payload is the counters, not the time.

``EXPLAIN TRACE <query>`` in :mod:`repro.engine.database` activates the
tracer for exactly one statement and renders the finished tree with
:meth:`Span.render`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One node of a trace tree: name, duration, counters, children."""

    __slots__ = ("name", "start", "duration", "counters", "children", "_tracer")

    def __init__(self, name: str, tracer: Optional["Tracer"] = None):
        self.name = name
        self.start = 0.0
        self.duration = 0.0
        self.counters: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self._tracer = tracer

    # -- counters ----------------------------------------------------------

    def add(self, name: str, amount: Any) -> None:
        """Accumulate a counter on this span (numeric add, last-write
        for non-numeric annotations)."""
        if isinstance(amount, (int, float)) and not isinstance(amount, bool):
            self.counters[name] = self.counters.get(name, 0) + amount
        else:
            self.counters[name] = amount

    def annotate_child(self, name: str, **counters: Any) -> "Span":
        """Attach a zero-duration accounting child (no timing)."""
        child = Span(name)
        child.counters.update(counters)
        self.children.append(child)
        return child

    # -- context manager (timed phase) -------------------------------------

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        if self._tracer is not None:
            self._tracer._stack.append(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.duration = time.perf_counter() - self.start
        if self._tracer is not None and self._tracer._stack and self._tracer._stack[-1] is self:
            self._tracer._stack.pop()

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "duration_ms": round(self.duration * 1000.0, 4),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Indented one-line-per-span tree, durations in ms."""
        parts = [f"{'  ' * indent}{self.name}"]
        if self.duration:
            parts.append(f"{self.duration * 1000.0:.3f}ms")
        if self.counters:
            parts.append(
                " ".join(f"{key}={value}" for key, value in sorted(self.counters.items()))
            )
        lines = [" ".join(parts)]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first span with ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class _NullSpan:
    """Shared do-nothing span handed out when no trace is active."""

    __slots__ = ()

    def add(self, name: str, amount: Any) -> None:
        pass

    def annotate_child(self, name: str, **counters: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Capture one span tree at a time (per-statement / per-apply).

    Usage::

        root = tracer.begin("statement")
        with root:
            with tracer.span("parse"):
                ...
        tree = tracer.finish()   # -> the root Span, tracer back to idle

    While idle, :meth:`span` and :attr:`current` return shared no-op
    objects, so instrumentation costs next to nothing.
    """

    __slots__ = ("_root", "_stack")

    def __init__(self) -> None:
        self._root: Optional[Span] = None
        self._stack: List[Span] = []

    @property
    def active(self) -> bool:
        return self._root is not None

    def begin(self, name: str) -> Span:
        """Start capturing; returns the root span (use as a context
        manager around the traced work)."""
        self._root = Span(name, tracer=self)
        self._stack = []
        return self._root

    def finish(self) -> Optional[Span]:
        """Stop capturing and return the completed tree."""
        root, self._root, self._stack = self._root, None, []
        return root

    def span(self, name: str):
        """A timed child of the innermost open span — or the shared
        no-op when no trace is active."""
        if self._root is None:
            return _NULL_SPAN
        parent = self._stack[-1] if self._stack else self._root
        child = Span(name, tracer=self)
        parent.children.append(child)
        return child

    @property
    def current(self):
        """The innermost open span (for attaching counters/annotations),
        or the shared no-op when idle."""
        if self._root is None:
            return _NULL_SPAN
        return self._stack[-1] if self._stack else self._root
