"""Bounded structured log of maintenance and recovery events.

The layout advisor, online migrations, snapshot compaction, WAL repair
and crash recovery all make decisions that are invisible after the fact
— "why did this table regroup?" has no answer once the migration is
done.  :class:`EventLog` keeps the last N such decisions as structured
records with a monotonic sequence number, a wall-clock timestamp, a
``kind`` tag and free-form payload fields.

Event vocabulary used across the repo (payload keys in parentheses):

========================  =====================================================
kind                      payload
========================  =====================================================
``layout_advice``         table, current_cost, target_cost, migration_cost,
                          saving, worthwhile, target_groups
``migration_start``       table, groups
``migration_step``        table, groups
``migration_finish``      table
``migration_resume``      table (recovery re-armed an unfinished migration)
``wal_repair``            path, truncated_bytes, cause
``recovery``              directory, snapshot_lsn, replayed_ops, tables
``snapshot_compaction``   directory, lsn, wal_bytes_dropped
``maintenance_pause``     worker
``maintenance_resume``    worker
``maintenance_drain``     worker, beats
``maintenance_error``     worker, error (a background beat raised)
========================  =====================================================

The log is a ``deque(maxlen=...)`` — recording is O(1) and the memory
bound is fixed; ``tail(n)`` serves the CLI ``events`` command.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["Event", "EventLog"]


class Event:
    """One recorded decision/outcome: seq, timestamp, kind, payload."""

    __slots__ = ("seq", "timestamp", "kind", "data")

    def __init__(self, seq: int, timestamp: float, kind: str, data: Dict[str, Any]):
        self.seq = seq
        self.timestamp = timestamp
        self.kind = kind
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "ts": self.timestamp, "kind": self.kind, **self.data}

    def render(self) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(self.timestamp))
        fields = " ".join(f"{key}={value}" for key, value in self.data.items())
        return f"[{self.seq:>4}] {stamp} {self.kind:<20} {fields}".rstrip()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.seq}, {self.kind!r}, {self.data!r})"


class EventLog:
    """Bounded append-only event buffer (drops the oldest past maxlen)."""

    def __init__(self, maxlen: int = 512):
        self.maxlen = maxlen
        self._events: Deque[Event] = deque(maxlen=maxlen)
        self._seq = 0
        # Recorders now include the background maintenance thread; the
        # lock keeps sequence numbers dense under concurrent record().
        self._lock = threading.Lock()
        self.enabled = True

    def record(self, kind: str, **data: Any) -> Optional[Event]:
        """Append one event; returns it (None when disabled)."""
        if not self.enabled:
            return None
        with self._lock:
            self._seq += 1
            event = Event(self._seq, time.time(), kind, data)
            self._events.append(event)
        return event

    def tail(self, n: Optional[int] = None) -> List[Event]:
        """The most recent ``n`` events, oldest first (all when None)."""
        events = list(self._events)
        if n is not None and n >= 0:
            events = events[-n:] if n else []
        return events

    def of_kind(self, kind: str) -> List[Event]:
        return [event for event in self._events if event.kind == kind]

    def kinds(self) -> List[str]:
        """Distinct kinds in arrival order (debugging/tests)."""
        seen: List[str] = []
        for event in self._events:
            if event.kind not in seen:
                seen.append(event.kind)
        return seen

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
