"""Unified observability: metrics registry, span tracer, event log.

The paper's claims are about *measured* page I/O and recalc cost; this
package is the substrate that makes every layer of the reproduction
report through one surface instead of five disconnected counter islands:

* :mod:`repro.obs.metrics` — a zero-dependency process registry of
  counters, gauges and streaming log-bucket histograms (p50/p95/p99
  without per-sample allocation), exported Prometheus-style or as a
  human table,
* :mod:`repro.obs.trace` — a lightweight span tracer for per-statement
  capture (``EXPLAIN TRACE <query>``) and the server apply path; when no
  trace is active every instrumentation point is a shared no-op,
* :mod:`repro.obs.events` — a bounded structured log of maintenance
  events (layout advice, migration lifecycle, snapshot compaction, WAL
  repair, crash recovery) with timestamps and causes.
"""

from repro.obs.events import Event, EventLog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "Span",
    "Tracer",
    "Event",
    "EventLog",
]
