"""Process-wide metrics: counters, gauges, streaming histograms.

Design constraints (the hot paths this serves are per-statement and
per-apply, thousands of events per second in the benchmarks):

* **no per-sample allocation** — a histogram is a fixed array of integer
  buckets with geometric (log-scale) boundaries; ``observe`` is a
  ``frexp`` + two integer adds,
* **near-zero overhead when disabled** — every instrument checks one
  boolean and returns; call sites that would pay for ``perf_counter``
  gate on :attr:`MetricsRegistry.enabled` themselves,
* **pull, don't push, for existing counters** — the engine already keeps
  cheap counter structs (``IOStats``, ``WalStats``, ``ComputeStats``,
  buffer-pool hit/miss).  Rather than double-counting on the hot path,
  components register *collector* callbacks that read those structs at
  snapshot/export time.

Export formats: :meth:`MetricsRegistry.render_prometheus` (text
exposition format) and :meth:`MetricsRegistry.render_table` (aligned
human table for the CLI).
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
]

Collector = Callable[[], Dict[str, Any]]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value", "_registry")

    def __init__(self, name: str, help: str = "", registry: Optional["MetricsRegistry"] = None):
        self.name = name
        self.help = help
        self.value = 0
        self._registry = registry

    def inc(self, amount: int = 1) -> None:
        if self._registry is not None and not self._registry.enabled:
            return
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that can go up and down (sessions, pages, versions)."""

    __slots__ = ("name", "help", "value", "_registry")

    def __init__(self, name: str, help: str = "", registry: Optional["MetricsRegistry"] = None):
        self.name = name
        self.help = help
        self.value = 0
        self._registry = registry

    def set(self, value: Any) -> None:
        if self._registry is not None and not self._registry.enabled:
            return
        self.value = value

    def inc(self, amount: int = 1) -> None:
        if self._registry is not None and not self._registry.enabled:
            return
        self.value += amount

    def dec(self, amount: int = 1) -> None:
        self.inc(-amount)

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """Fixed log-bucket streaming histogram (p50/p95/p99, no samples kept).

    Bucket ``i`` covers ``(smallest * 2**(i-1), smallest * 2**i]``;
    bucket 0 is everything ``<= smallest`` and the last bucket catches
    the overflow tail.  With the default ``smallest=1e-6`` (one
    microsecond) and 40 buckets the range tops out around 10**6 seconds
    — wide enough for any latency this system produces, at a resolution
    of one part in two, which is plenty for p50/p95/p99 shape claims.
    """

    __slots__ = ("name", "help", "smallest", "buckets", "count", "sum", "_registry")

    N_BUCKETS = 40

    def __init__(
        self,
        name: str,
        help: str = "",
        smallest: float = 1e-6,
        registry: Optional["MetricsRegistry"] = None,
    ):
        self.name = name
        self.help = help
        self.smallest = smallest
        self.buckets = [0] * self.N_BUCKETS
        self.count = 0
        self.sum = 0.0
        self._registry = registry

    def observe(self, value: float) -> None:
        if self._registry is not None and not self._registry.enabled:
            return
        self.count += 1
        self.sum += value
        self.buckets[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        if value <= self.smallest:
            return 0
        # frexp is a C-speed log2: smallest * 2**(e-1) < value <= smallest * 2**e
        mantissa, exponent = math.frexp(value / self.smallest)
        if mantissa == 0.5:  # exact power of two sits on the lower edge
            exponent -= 1
        return min(exponent, self.N_BUCKETS - 1)

    def upper_bound(self, index: int) -> float:
        """The inclusive upper edge of bucket ``index``."""
        return self.smallest * (2.0 ** index)

    def percentile(self, q: float) -> float:
        """The upper edge of the bucket holding the q-quantile sample
        (0 when nothing was observed)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket in enumerate(self.buckets):
            cumulative += bucket
            if cumulative >= target:
                return self.upper_bound(index)
        return self.upper_bound(self.N_BUCKETS - 1)

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    def reset(self) -> None:
        self.buckets = [0] * self.N_BUCKETS
        self.count = 0
        self.sum = 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """A named set of instruments plus pull-collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent by
    name, so wiring code can run in any order); ``register_collector``
    adds a callback returning ``{name: number}`` gauges read from
    existing counter structs at snapshot time.  :meth:`disable` turns
    every instrument into a cheap no-op — the "metrics off" mode the
    overhead benchmark asserts costs ~nothing.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Collector] = []
        self._help: Dict[str, str] = {}

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every directly-updated instrument (collectors are live
        views over their sources and are not touched)."""
        for instrument in (
            list(self._counters.values())
            + list(self._gauges.values())
            + list(self._histograms.values())
        ):
            instrument.reset()

    # -- instruments -------------------------------------------------------

    def _claim(self, name: str, kind: Dict[str, Any]) -> None:
        """Guard the flat namespace: one name, one instrument kind
        (a counter and a gauge sharing a name would silently collide
        in :meth:`snapshot`)."""
        for other in (self._counters, self._gauges, self._histograms):
            if other is not kind and name in other:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._claim(name, self._counters)
            instrument = self._counters[name] = Counter(name, help, registry=self)
            self._help[name] = help
        return instrument

    def gauge(self, name: str, help: str = "") -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._claim(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name, help, registry=self)
            self._help[name] = help
        return instrument

    def histogram(self, name: str, help: str = "", smallest: float = 1e-6) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._claim(name, self._histograms)
            instrument = self._histograms[name] = Histogram(
                name, help, smallest=smallest, registry=self
            )
            self._help[name] = help
        return instrument

    def register_collector(self, collector: Collector) -> Collector:
        """Register a pull callback returning ``{metric_name: value}``.

        Collectors read the engine's existing cheap counter structs
        (IOStats, WalStats, ComputeStats, ...) so hot paths are never
        double-instrumented.  Returns the callback for later
        :meth:`remove_collector`."""
        self._collectors.append(collector)
        return collector

    def remove_collector(self, collector: Collector) -> None:
        try:
            self._collectors.remove(collector)
        except ValueError:
            pass

    # -- export ------------------------------------------------------------

    def _collected(self) -> Dict[str, Any]:
        values: Dict[str, Any] = {}
        for collector in list(self._collectors):
            values.update(collector())
        return values

    def snapshot(self) -> Dict[str, Any]:
        """One flat dict of every metric: counters and collector gauges
        as numbers, histograms as ``{count, sum, p50, p95, p99}``."""
        snap: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            snap[name] = counter.value
        for name, gauge in self._gauges.items():
            snap[name] = gauge.value
        snap.update(self._collected())
        for name, histogram in self._histograms.items():
            snap[name] = histogram.summary()
        return snap

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (the scrape endpoint shape)."""
        lines: List[str] = []

        def emit(name: str, kind: str, value: Any) -> None:
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            lines.append(f"{name} {_format_number(value)}")

        for name, counter in sorted(self._counters.items()):
            emit(name, "counter", counter.value)
        for name, gauge in sorted(self._gauges.items()):
            emit(name, "gauge", gauge.value)
        for name, value in sorted(self._collected().items()):
            emit(name, "gauge", value)
        for name, histogram in sorted(self._histograms.items()):
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for index, bucket in enumerate(histogram.buckets):
                if bucket == 0:
                    continue
                cumulative += bucket
                edge = _format_number(histogram.upper_bound(index))
                lines.append(f'{name}_bucket{{le="{edge}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{name}_sum {_format_number(histogram.sum)}")
            lines.append(f"{name}_count {histogram.count}")
        return "\n".join(lines) + "\n"

    def render_table(self) -> str:
        """Aligned ``name value`` table for humans (the CLI default)."""
        rows: List[tuple] = []
        for name, counter in sorted(self._counters.items()):
            rows.append((name, _format_number(counter.value)))
        for name, gauge in sorted(self._gauges.items()):
            rows.append((name, _format_number(gauge.value)))
        for name, value in sorted(self._collected().items()):
            rows.append((name, _format_number(value)))
        for name, histogram in sorted(self._histograms.items()):
            summary = histogram.summary()
            rows.append(
                (
                    name,
                    f"count={summary['count']} p50={_format_number(summary['p50'])}"
                    f" p95={_format_number(summary['p95'])}"
                    f" p99={_format_number(summary['p99'])}",
                )
            )
        if not rows:
            return "(no metrics)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name.ljust(width)}  {value}" for name, value in rows)


def _format_number(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


#: The default process-wide registry, for components created without an
#: explicit one.  Each :class:`~repro.engine.database.Database` gets its
#: own registry by default (so tests and benchmarks stay isolated); pass
#: ``metrics=global_registry()`` to aggregate several into one scrape.
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL
