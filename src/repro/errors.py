"""Exception hierarchy for the DataSpread reproduction.

Every error raised by :mod:`repro` derives from :class:`DataSpreadError` so
applications can catch one base class.  Sub-hierarchies mirror the major
subsystems: addressing, the relational engine, the formula language, the
interface layer and synchronisation.
"""

from __future__ import annotations


class DataSpreadError(Exception):
    """Base class for every error raised by the repro package."""


# ---------------------------------------------------------------------------
# Addressing
# ---------------------------------------------------------------------------

class AddressError(DataSpreadError, ValueError):
    """An A1/R1C1 cell or range reference could not be parsed or is invalid."""


# ---------------------------------------------------------------------------
# Relational engine
# ---------------------------------------------------------------------------

class EngineError(DataSpreadError):
    """Base class for relational-engine errors."""


class SqlError(EngineError):
    """Base class for SQL front-end errors."""


class SqlSyntaxError(SqlError):
    """The SQL text could not be tokenised or parsed.

    Carries the ``position`` (character offset) when known so callers can
    point at the offending token.
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class PlanError(SqlError):
    """A parsed statement could not be turned into an executable plan
    (unknown table/column, ambiguous reference, unsupported construct)."""


class ExecutionError(EngineError):
    """A runtime failure while executing a plan (type mismatch, division by
    zero under strict mode, constraint violation)."""


class CatalogError(EngineError):
    """Catalog inconsistency: duplicate table, missing table, bad schema."""


class SchemaError(EngineError):
    """Invalid schema operation (duplicate column, dropping missing column,
    incompatible type change)."""


class ConstraintError(ExecutionError):
    """A primary-key / not-null / uniqueness constraint was violated."""


class TransactionError(EngineError):
    """Invalid transaction state transition (commit without begin, nested
    begin when not supported, operating on an aborted transaction)."""


class StorageError(EngineError):
    """Low-level storage failure: bad page id, corrupt block, record id not
    found in the store."""


# ---------------------------------------------------------------------------
# Formula language
# ---------------------------------------------------------------------------

class FormulaError(DataSpreadError):
    """Base class for spreadsheet-formula errors."""


class FormulaSyntaxError(FormulaError):
    """The formula text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class FormulaEvalError(FormulaError):
    """Formula evaluation failed; corresponds to the spreadsheet error codes
    (#VALUE!, #DIV/0!, #REF!, #NAME?, #CIRC!).

    The ``code`` attribute carries the spreadsheet-style error literal.
    """

    def __init__(self, message: str, code: str = "#VALUE!"):
        super().__init__(message)
        self.code = code


class CircularDependencyError(FormulaEvalError):
    """A formula (directly or transitively) refers to its own cell."""

    def __init__(self, message: str):
        super().__init__(message, code="#CIRC!")


# ---------------------------------------------------------------------------
# Interface / spreadsheet layer
# ---------------------------------------------------------------------------

class InterfaceError(DataSpreadError):
    """Base class for spreadsheet-interface errors."""


class SheetError(InterfaceError):
    """Invalid sheet operation (duplicate sheet name, missing sheet)."""


class RegionError(InterfaceError):
    """A DBTABLE/DBSQL display region is invalid or overlaps another
    region."""


class SyncError(InterfaceError):
    """Two-way synchronisation failed: unmapped row, missing primary key,
    conflicting concurrent edits."""


class ImportExportError(InterfaceError):
    """Creating a table from a range, or importing/exporting data, failed
    (e.g. no header row, ragged data, unsupported value)."""


# ---------------------------------------------------------------------------
# Server / durability layer
# ---------------------------------------------------------------------------

class ServerError(DataSpreadError):
    """Base class for the durable-service layer (:mod:`repro.server`)."""


class WALError(ServerError):
    """The write-ahead log is unusable: corrupt interior record, checksum
    mismatch before the tail, non-monotonic LSN, or an I/O failure.  A torn
    *tail* (partial final record after a crash) is NOT an error — recovery
    silently stops at the last intact record."""


class SessionError(ServerError):
    """Invalid session operation (unknown session id, closed session)."""


class StaleWriteError(ServerError):
    """An optimistic write lost the race: the target cell was modified at a
    newer version than the one the writing session had seen.  Carries the
    service's ``current_version`` so the client can refresh and retry."""

    def __init__(self, message: str, current_version: int):
        super().__init__(message)
        self.current_version = current_version


# ---------------------------------------------------------------------------
# Runtime sanitizer
# ---------------------------------------------------------------------------

class SanitizerError(DataSpreadError):
    """A runtime invariant assertion failed under ``Database(sanitize=True)``
    (see :mod:`repro.analysis.sanitizer`): encoded page mutated without a
    thaw, batch fragments out of rid lockstep, WAL append-offset drift, or
    post-migration grouping/index inconsistency.  Raised at the *first*
    observation point after the corruption, not where the bug happened —
    the message says which invariant broke and on what object."""
