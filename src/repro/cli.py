"""An interactive terminal front-end for DataSpread.

The original demo used Excel; this REPL is our stand-in interface: a
scrollable sheet window plus a command line that accepts both cell entry
and SQL — the "holistic unification" at the prompt.

Run:  python -m repro.cli

Commands
--------
``A1 = 42``                 set a cell (values or ``=formulas``)
``A1 = =SUM(B1:B9)``        install a formula
``sql SELECT ...``          run SQL; SELECT results are printed
``sheet [name]``            switch/create sheet
``goto A100``               scroll the window to a cell
``show [A1:D10]``           print the current window (or a range)
``tables``                  list tables
``regions``                 list display regions
``stats``                   workbook statistics
``save <path>``             persist the whole workbook to JSON
``load <path>``             load a saved workbook
``help`` / ``quit``
"""

from __future__ import annotations

import shlex
import sys
from typing import Optional

from repro import Workbook
from repro.core.address import CellAddress
from repro.core.render import render_range, render_window
from repro.errors import DataSpreadError

__all__ = ["DataSpreadShell", "main"]

_PROMPT = "dataspread> "


class DataSpreadShell:
    """Line-oriented REPL over a workbook.

    Separated from ``main`` so tests can drive it with
    :meth:`handle_line` and capture the returned output strings.
    """

    def __init__(self, workbook: Optional[Workbook] = None):
        self.workbook = workbook if workbook is not None else Workbook()
        self.sheet_name = self.workbook.sheet_names()[0]
        self.top = 0
        self.left = 0
        self.n_rows = 12
        self.n_cols = 6
        self.running = True

    # -- command handling --------------------------------------------------

    def handle_line(self, line: str) -> str:
        """Execute one command line; returns the text to display."""
        line = line.strip()
        if not line:
            return ""
        try:
            return self._dispatch(line)
        except DataSpreadError as error:
            return f"error: {error}"

    def _dispatch(self, line: str) -> str:
        lowered = line.lower()
        if lowered in ("quit", "exit"):
            self.running = False
            return "bye"
        if lowered == "help":
            return (__doc__ or "").strip()
        if lowered.startswith("sql "):
            return self._run_sql(line[4:])
        if lowered.startswith("sheet"):
            return self._switch_sheet(line[5:].strip())
        if lowered.startswith("goto "):
            return self._goto(line[5:].strip())
        if lowered.startswith("show"):
            argument = line[4:].strip()
            if argument:
                return render_range(self.workbook, self.sheet_name, argument)
            return self._window()
        if lowered == "tables":
            names = self.workbook.database.table_names()
            return "\n".join(
                f"{name} ({self.workbook.database.table(name).n_rows} rows)"
                for name in names
            ) or "(no tables)"
        if lowered == "regions":
            lines = []
            for region in self.workbook.regions.all():
                context = region.context
                lines.append(
                    f"#{context.region_id} {context.kind} "
                    f"{context.sheet}!{context.extent.to_a1(include_sheet=False) if context.extent else '?'} "
                    f"<- {context.description}"
                )
            return "\n".join(lines) or "(no regions)"
        if lowered == "stats":
            summary = self.workbook.stats_summary()
            return "\n".join(f"{key}: {value}" for key, value in summary.items())
        if lowered.startswith("save "):
            from repro.core.persist import save_workbook

            path = line[5:].strip()
            save_workbook(self.workbook, path)
            return f"saved to {path}"
        if lowered.startswith("load "):
            from repro.core.persist import load_workbook

            path = line[5:].strip()
            self.workbook = load_workbook(path)
            self.sheet_name = self.workbook.sheet_names()[0]
            self.top = self.left = 0
            return f"loaded {path} ({len(self.workbook.sheets)} sheets)"
        if "=" in line:
            return self._assign(line)
        return f"unrecognised command: {line!r} (try 'help')"

    def _assign(self, line: str) -> str:
        target, _, raw = line.partition("=")
        target = target.strip()
        raw = raw.strip()
        CellAddress.parse(target)  # validate before mutating
        # '=SUM(...)' arrives as 'A1 = =SUM(...)'; plain values without '='.
        self.workbook.set(self.sheet_name, target, raw if raw.startswith("=") else raw)
        value = self.workbook.get(self.sheet_name, target)
        return f"{target} = {value!r}"

    def _run_sql(self, sql: str) -> str:
        result = self.workbook.execute(sql)
        if not result.columns:
            return f"ok ({result.rowcount} rows affected)"
        widths = [
            max(len(str(column)), *(len(str(row[i])) for row in result.rows))
            if result.rows
            else len(str(column))
            for i, column in enumerate(result.columns)
        ]
        lines = [
            " | ".join(str(c).ljust(w) for c, w in zip(result.columns, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in result.rows[:50]:
            lines.append(
                " | ".join(str(v if v is not None else "").ljust(w) for v, w in zip(row, widths))
            )
        if len(result.rows) > 50:
            lines.append(f"... ({len(result.rows)} rows total)")
        return "\n".join(lines)

    def _switch_sheet(self, name: str) -> str:
        if not name:
            return "sheets: " + ", ".join(self.workbook.sheet_names())
        if name not in self.workbook.sheets:
            self.workbook.add_sheet(name)
        self.sheet_name = name
        self.top = self.left = 0
        return f"on sheet {name}"

    def _goto(self, ref: str) -> str:
        address = CellAddress.parse(ref)
        self.top = address.row
        self.left = address.col
        return self._window()

    def _window(self) -> str:
        return render_window(
            self.workbook,
            self.sheet_name,
            top=self.top,
            left=self.left,
            n_rows=self.n_rows,
            n_cols=self.n_cols,
        )


def main() -> None:  # pragma: no cover - interactive loop
    shell = DataSpreadShell()
    print("DataSpread shell — 'help' for commands, 'quit' to exit.")
    while shell.running:
        try:
            line = input(_PROMPT)
        except (EOFError, KeyboardInterrupt):
            print()
            break
        output = shell.handle_line(line)
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    main()
