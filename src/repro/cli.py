"""An interactive terminal front-end for DataSpread.

The original demo used Excel; this REPL is our stand-in interface: a
scrollable sheet window plus a command line that accepts both cell entry
and SQL — the "holistic unification" at the prompt.

Run:  python -m repro.cli                 (in-memory workbook)
      python -m repro.cli serve <dir>     (durable, WAL-backed workbook)
      python -m repro.cli replay <path>   (recover a WAL/service dir, print state)
      python -m repro.cli metrics <dir>   (recover a service dir, print metrics)
      python -m repro.cli events <dir>    (recover a service dir, tail event log)

Commands
--------
``A1 = 42``                 set a cell (values or ``=formulas``)
``A1 = =SUM(B1:B9)``        install a formula
``sql SELECT ...``          run SQL; SELECT results are printed
``sheet [name]``            switch/create sheet
``goto A100``               scroll the window to a cell
``show [A1:D10]``           print the current window (or a range)
``tables``                  list tables
``regions``                 list display regions
``stats``                   workbook statistics
``metrics [prom]``          metrics snapshot (human table, or Prometheus text)
``events [n]``              tail the maintenance event log (last n, default all)
``layout-stats [table]``    physical layout: groups, pages, I/O, skip ratios
``layout-advise [table]``   ask the layout advisor what it would do
``save <path>``             persist the whole workbook to JSON
``load <path>``             load a saved workbook
``serve <dir>``             attach to a durable workbook (WAL + snapshots)
``replay <path>``           recover a WAL or service directory, print state
``deltas``                  (serving) drain this session's change feed
``snapshot``                (serving) force a compaction snapshot
``help`` / ``quit``
"""

from __future__ import annotations

import os
import shlex
import sys
from typing import List, Optional

from repro import Workbook
from repro.core.address import CellAddress
from repro.core.render import render_range, render_window
from repro.errors import DataSpreadError, ServerError, StaleWriteError

__all__ = ["DataSpreadShell", "replay_report", "observability_report", "main"]

_PROMPT = "dataspread> "


def replay_report(path: str) -> str:
    """Recover durable state from ``path`` and describe the result.

    ``path`` may be a service directory (snapshot + WAL) or a bare WAL
    file (replayed from an empty workbook).  Returns a human-readable
    summary plus a render of the first sheet's top-left window."""
    from repro.server.service import WAL_FILENAME, apply_op, recover_state
    from repro.server.wal import committed_ops, read_wal

    if not os.path.exists(path):
        raise ServerError(f"no such WAL file or service directory: {path!r}")
    if os.path.isdir(path):
        directory = path
    elif (
        os.path.basename(path) == WAL_FILENAME
        and os.path.exists(os.path.join(os.path.dirname(path) or ".", "snapshot.json"))
    ):
        # A wal.jsonl next to a snapshot: replay the whole directory so
        # ops that assume snapshotted state (tables, sheets) resolve.
        directory = os.path.dirname(path) or "."
    else:
        directory = None

    if directory is not None:
        recovery = recover_state(directory)
        workbook = recovery.workbook
        header = (
            f"recovered {directory}: "
            f"{'snapshot + ' if recovery.snapshot_used else ''}"
            f"{recovery.ops_replayed} committed ops replayed "
            f"(wal lsn {recovery.last_lsn})"
        )
    else:
        records, _, _ = read_wal(path)
        ops = committed_ops(records)
        workbook = Workbook()
        for op in ops:
            apply_op(workbook, op)
        workbook.recalc_all()
        header = (
            f"replayed {path}: {len(ops)} committed ops "
            f"of {len(records)} records"
        )

    lines = [header]
    for name in workbook.database.table_names():
        table = workbook.database.table(name)
        mode = "auto" if table.auto_layout else "manual"
        line = (
            f"table {name}: {table.n_rows} rows, "
            f"groups {table.schema.groups}, layout {mode}"
        )
        if table.migration_active:
            line += f", migrating -> {table.layout_migration_target}"
        lines.append(line)
    for region in workbook.regions.all():
        context = region.context
        extent = context.extent.to_a1(include_sheet=False) if context.extent else "?"
        lines.append(f"region #{context.region_id} {context.kind} {context.sheet}!{extent}")
    first_sheet = workbook.sheet_names()[0]
    lines.append(render_window(workbook, first_sheet, top=0, left=0, n_rows=12, n_cols=6))
    return "\n".join(lines)


def observability_report(kind: str, directory: str, argument: str = "") -> str:
    """Recover a service directory and print its metrics or event log.

    ``kind`` is ``"metrics"`` (``argument`` may be ``"prom"`` for the
    Prometheus text exposition) or ``"events"`` (``argument`` may be a
    tail length).  Recovery itself populates the registry and event log,
    so this shows what a server opening the directory would see —
    including any WAL repair and resumed migrations."""
    from repro.server.service import recover_state

    if not os.path.isdir(directory):
        raise ServerError(f"no such service directory: {directory!r}")
    recovery = recover_state(directory)
    database = recovery.workbook.database
    if kind == "metrics":
        if argument in ("prom", "prometheus"):
            return database.metrics_registry.render_prometheus().rstrip("\n")
        return database.metrics_registry.render_table()
    limit = int(argument) if argument else None
    events = database.events.tail(limit)
    if not events:
        return "(no events)"
    return "\n".join(event.render() for event in events)


class DataSpreadShell:
    """Line-oriented REPL over a workbook.

    Separated from ``main`` so tests can drive it with
    :meth:`handle_line` and capture the returned output strings.  With a
    :class:`~repro.server.service.WorkbookService` attached (the ``serve``
    command or ``main(["serve", dir])``), edits and SQL flow through the
    durable apply pipeline as one session of the service.
    """

    def __init__(self, workbook: Optional[Workbook] = None, service=None):
        self.service = None
        self.session = None
        self.workbook = workbook if workbook is not None else Workbook()
        self.sheet_name = self.workbook.sheet_names()[0]
        self.top = 0
        self.left = 0
        self.n_rows = 12
        self.n_cols = 6
        self.running = True
        if service is not None:
            self._attach_service(service)

    def _attach_service(self, service) -> None:
        self.service = service
        self.workbook = service.workbook
        self.sheet_name = self.workbook.sheet_names()[0]
        self.top = self.left = 0
        self.session = service.connect(
            "cli",
            sheet=self.sheet_name,
            top=self.top,
            left=self.left,
            n_rows=self.n_rows,
            n_cols=self.n_cols,
        )

    # -- command handling --------------------------------------------------

    def handle_line(self, line: str) -> str:
        """Execute one command line; returns the text to display."""
        line = line.strip()
        if not line:
            return ""
        try:
            return self._dispatch(line)
        except DataSpreadError as error:
            return f"error: {error}"

    def _dispatch(self, line: str) -> str:
        lowered = line.lower()
        if lowered in ("quit", "exit"):
            self.running = False
            if self.service is not None:
                self.service.close()
            return "bye"
        if lowered == "help":
            return (__doc__ or "").strip()
        if lowered.startswith("serve "):
            return self._serve(line[6:].strip())
        if lowered.startswith("replay "):
            return replay_report(line[7:].strip())
        if lowered == "deltas":
            return self._deltas()
        if lowered == "snapshot":
            if self.service is None:
                return "not serving (use 'serve <dir>' first)"
            path = self.service.compact()
            return f"snapshot written to {path}" if path else "snapshot skipped"
        if lowered.startswith("sql "):
            return self._run_sql(line[4:])
        if lowered.startswith("sheet"):
            return self._switch_sheet(line[5:].strip())
        if lowered.startswith("goto "):
            return self._goto(line[5:].strip())
        if lowered.startswith("show"):
            argument = line[4:].strip()
            if argument:
                return render_range(self.workbook, self.sheet_name, argument)
            return self._window()
        if lowered == "tables":
            names = self.workbook.database.table_names()
            return "\n".join(
                f"{name} ({self.workbook.database.table(name).n_rows} rows)"
                for name in names
            ) or "(no tables)"
        if lowered == "regions":
            lines = []
            for region in self.workbook.regions.all():
                context = region.context
                lines.append(
                    f"#{context.region_id} {context.kind} "
                    f"{context.sheet}!{context.extent.to_a1(include_sheet=False) if context.extent else '?'} "
                    f"<- {context.description}"
                )
            return "\n".join(lines) or "(no regions)"
        if lowered == "metrics" or lowered.startswith("metrics "):
            return self._metrics(line[len("metrics") :].strip())
        if lowered == "events" or lowered.startswith("events "):
            return self._events(line[len("events") :].strip())
        if lowered.startswith("layout-stats"):
            return self._layout_stats(line[len("layout-stats") :].strip())
        if lowered.startswith("layout-advise"):
            return self._layout_advise(line[len("layout-advise") :].strip())
        if lowered == "stats":
            summary = self.workbook.stats_summary()
            if self.service is not None:
                summary["server"] = self.service.stats_summary()
            return "\n".join(f"{key}: {value}" for key, value in summary.items())
        if lowered.startswith("save "):
            from repro.core.persist import save_workbook

            path = line[5:].strip()
            save_workbook(self.workbook, path)
            return f"saved to {path}"
        if lowered.startswith("load "):
            from repro.core.persist import load_workbook

            if self.service is not None:
                return "error: cannot 'load' while serving (quit and reopen)"
            path = line[5:].strip()
            self.workbook = load_workbook(path)
            self.sheet_name = self.workbook.sheet_names()[0]
            self.top = self.left = 0
            return f"loaded {path} ({len(self.workbook.sheets)} sheets)"
        if "=" in line:
            return self._assign(line)
        return f"unrecognised command: {line!r} (try 'help')"

    def _assign(self, line: str) -> str:
        target, _, raw = line.partition("=")
        target = target.strip()
        raw = raw.strip()
        CellAddress.parse(target)  # validate before mutating
        # '=SUM(...)' arrives as 'A1 = =SUM(...)'; plain values without '='.
        if self.service is not None:
            try:
                self.service.set_cell(
                    self.session.session_id, self.sheet_name, target, raw
                )
            except StaleWriteError as error:
                return (
                    f"stale write rejected (now at version "
                    f"{error.current_version}); run 'deltas' to catch up, "
                    "then retry"
                )
        else:
            self.workbook.set(self.sheet_name, target, raw)
        value = self.workbook.get(self.sheet_name, target)
        return f"{target} = {value!r}"

    def _run_sql(self, sql: str) -> str:
        from repro.engine.database import is_explain_trace

        if self.service is not None and not is_explain_trace(sql):
            result = self.service.execute(self.session.session_id, sql).result
        else:
            # EXPLAIN TRACE is read-only diagnostics: run it directly on
            # the engine rather than through the durable apply pipeline
            # (it is not an operation worth logging to the WAL).
            result = self.workbook.execute(sql)
        if result is None or not result.columns:
            rowcount = getattr(result, "rowcount", 0)
            return f"ok ({rowcount} rows affected)"
        if result.columns == ["trace"]:
            # EXPLAIN TRACE: the rows are pre-rendered tree lines.
            return "\n".join(str(row[0]) for row in result.rows)
        widths = [
            max(len(str(column)), *(len(str(row[i])) for row in result.rows))
            if result.rows
            else len(str(column))
            for i, column in enumerate(result.columns)
        ]
        lines = [
            " | ".join(str(c).ljust(w) for c, w in zip(result.columns, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in result.rows[:50]:
            lines.append(
                " | ".join(str(v if v is not None else "").ljust(w) for v, w in zip(row, widths))
            )
        if len(result.rows) > 50:
            lines.append(f"... ({len(result.rows)} rows total)")
        return "\n".join(lines)

    # -- observability commands ---------------------------------------------

    def _metrics(self, argument: str) -> str:
        registry = self.workbook.database.metrics_registry
        if argument in ("prom", "prometheus"):
            return registry.render_prometheus().rstrip("\n")
        if argument:
            return "usage: metrics [prom]"
        return registry.render_table()

    def _events(self, argument: str) -> str:
        limit = None
        if argument:
            try:
                limit = int(argument)
            except ValueError:
                return "usage: events [n]"
        events = self.workbook.database.events.tail(limit)
        if not events:
            return "(no events)"
        return "\n".join(event.render() for event in events)

    # -- adaptive-layout commands -------------------------------------------

    def _layout_tables(self, name: str):
        database = self.workbook.database
        if name:
            return [database.table(name)]
        return [database.table(table) for table in database.table_names()]

    def _layout_stats(self, name: str) -> str:
        tables = self._layout_tables(name)
        if not tables:
            return "(no tables)"
        lines = []
        for table in tables:
            mode = "auto" if table.auto_layout else "manual"
            suffix = (
                f", migration in progress -> {table.layout_migration_target}"
                if table.migration_active
                else ""
            )
            lines.append(
                f"table {table.name}: {table.n_rows} rows, "
                f"{table.store.n_groups} groups, layout {mode}{suffix}"
            )
            for info in table.store.group_summary():
                io = info["io"]
                encoded = (
                    f", encoded {info['ratio']:.1f}x" if info["encoded"] else ""
                )
                lines.append(
                    f"  group {info['group']} [{', '.join(info['columns'])}]: "
                    f"{info['pages']} pages, {io['reads']} block reads, "
                    f"{io['writes']} block writes, "
                    f"{io['bytes_read']} bytes decoded{encoded}"
                )
                skip = info["skip"]
                if skip["pages_skipped"] or skip["pages_scanned"]:
                    lines.append(
                        f"    skipping: {skip['pages_skipped']} pages skipped, "
                        f"{skip['pages_scanned']} scanned "
                        f"(ratio {skip['skip_ratio']:.1%}, "
                        f"zone coverage {info['zones']:.0%})"
                    )
            stats = table.store.access_stats
            lines.append(
                f"  ops: {stats.inserts} inserts, {stats.deletes} deletes, "
                f"{stats.point_reads} point reads, {stats.full_updates} row updates, "
                f"{stats.full_scans} table scans, {stats.schema_changes} schema changes"
            )
            for column_name, column in sorted(stats.columns.items()):
                if column.scans or column.updates:
                    lines.append(
                        f"  col {column_name}: {column.scans} scans, "
                        f"{column.updates} updates"
                    )
            # Joint-scan affinity (the co-access signal the layout
            # advisor clusters on), hottest pairs first.
            for (first, second), count in stats.co_access_pairs()[:8]:
                lines.append(f"  co-scan {first}+{second}: {count} joint scans")
        return "\n".join(lines)

    def _layout_advise(self, name: str) -> str:
        tables = self._layout_tables(name)
        if not tables:
            return "(no tables)"
        lines = []
        for table in tables:
            recommendation = table.advise_layout()
            if recommendation is None:
                lines.append(
                    f"table {table.name}: keep current layout "
                    f"{table.schema.groups} (no cheaper candidate, or too "
                    "little workload observed)"
                )
                continue
            verdict = (
                "recommended" if recommendation.worthwhile
                else "not worth the migration yet"
            )
            lines.append(
                f"table {table.name}: {verdict} -> {recommendation.target_groups} "
                f"(predicted blocks {recommendation.current_cost} -> "
                f"{recommendation.target_cost}, migration ~"
                f"{recommendation.migration_cost})"
            )
        return "\n".join(lines)

    def _switch_sheet(self, name: str) -> str:
        if not name:
            return "sheets: " + ", ".join(self.workbook.sheet_names())
        if name not in self.workbook.sheets:
            if self.service is not None:
                # Through the pipeline, so recovery can recreate the sheet
                # before replaying edits logged against it.
                self.service.apply(
                    self.session.session_id, {"type": "add_sheet", "name": name}
                )
            else:
                self.workbook.add_sheet(name)
        self.sheet_name = name
        self.top = self.left = 0
        if self.session is not None:
            self.session.viewport.sheet = name
            self.session.scroll_to(0, 0)
        return f"on sheet {name}"

    def _goto(self, ref: str) -> str:
        address = CellAddress.parse(ref)
        self.top = address.row
        self.left = address.col
        if self.session is not None:
            self.session.viewport.sheet = self.sheet_name
            self.session.scroll_to(self.top, self.left)
        return self._window()

    # -- server-mode commands ----------------------------------------------

    def _serve(self, directory: str) -> str:
        from repro.server.service import WorkbookService

        if self.service is not None:
            return f"error: already serving {self.service.directory}"
        if not directory:
            return "usage: serve <directory>"
        service = WorkbookService(directory)
        self._attach_service(service)
        return (
            f"serving {directory} (version {service.version}, "
            f"{service.recovered_ops} ops recovered, "
            f"session #{self.session.session_id})"
        )

    def _deltas(self) -> str:
        if self.session is None:
            return "not serving (use 'serve <dir>' first)"
        deltas = self.service.poll(self.session.session_id)
        if not deltas:
            return "(no pending deltas)"
        lines = []
        for delta in deltas:
            if delta.kind == "cell":
                address = CellAddress(delta.row, delta.col)
                lines.append(
                    f"v{delta.version} cell {delta.sheet}!"
                    f"{address.to_a1(include_sheet=False)} = {delta.value!r}"
                )
            else:
                extent = delta.area.to_a1(include_sheet=False) if delta.area else "?"
                lines.append(
                    f"v{delta.version} region #{delta.region_id} "
                    f"{delta.sheet}!{extent} ({delta.description})"
                )
        return "\n".join(lines)

    def _window(self) -> str:
        return render_window(
            self.workbook,
            self.sheet_name,
            top=self.top,
            left=self.left,
            n_rows=self.n_rows,
            n_cols=self.n_cols,
        )


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: ``serve <dir>`` / ``replay <path>`` subcommands, or
    the plain in-memory REPL when no arguments are given."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "replay":
        if len(arguments) != 2:
            print("usage: python -m repro.cli replay <wal-or-directory>")
            return 2
        try:
            print(replay_report(arguments[1]))
        except DataSpreadError as error:
            print(f"error: {error}")
            return 1
        return 0
    if arguments and arguments[0] in ("metrics", "events"):
        if len(arguments) not in (2, 3):
            print(f"usage: python -m repro.cli {arguments[0]} <directory> "
                  f"[{'prom' if arguments[0] == 'metrics' else 'n'}]")
            return 2
        extra = arguments[2] if len(arguments) == 3 else ""
        try:
            print(observability_report(arguments[0], arguments[1], extra))
        except (DataSpreadError, ValueError) as error:
            print(f"error: {error}")
            return 1
        return 0
    shell = DataSpreadShell()
    if arguments and arguments[0] == "serve":
        if len(arguments) != 2:
            print("usage: python -m repro.cli serve <directory>")
            return 2
        print(shell.handle_line(f"serve {arguments[1]}"))
    elif arguments:
        print(
            f"unknown subcommand {arguments[0]!r} "
            "(try 'serve', 'replay', 'metrics' or 'events')"
        )
        return 2
    _repl(shell)
    return 0


def _repl(shell: DataSpreadShell) -> None:  # pragma: no cover - interactive loop
    print("DataSpread shell — 'help' for commands, 'quit' to exit.")
    while shell.running:
        try:
            line = input(_PROMPT)
        except (EOFError, KeyboardInterrupt):
            print()
            break
        output = shell.handle_line(line)
        if output:
            print(output)
        if shell.service is not None and shell.running:
            # The serve loop's maintenance beat: background recalc plus a
            # Database.maintenance_tick (via the service, so layout
            # transitions are WAL-logged) — a recovered server keeps
            # adapting and resumes any restored half-done migration.
            shell.service.step(budget=32)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
