"""The current pane: what the user is looking at.

A :class:`Viewport` is a movable rectangle over one sheet.  It supplies

* the **visible predicate** used by the compute engine's scheduler (visible
  formulas recompute first — paper §2.2(e)),
* the row window `DBTABLE` regions materialise ("even though the
  spreadsheet can only support a few rows, as the user pans through the
  spreadsheet, the burden of supplying or refreshing the current window is
  placed on the relational database" — paper §1),
* scroll operations emitting the (top, left) trace benchmarks replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.compute.graph import CellKey
from repro.core.address import CellAddress, RangeAddress

__all__ = ["Viewport"]


@dataclass
class Viewport:
    """A sheet-aligned rectangle of visible cells."""

    sheet: str
    top: int = 0
    left: int = 0
    n_rows: int = 40
    n_cols: int = 20

    def __post_init__(self) -> None:
        if self.n_rows <= 0 or self.n_cols <= 0:
            raise ValueError("viewport dimensions must be positive")
        self._listeners: List[Callable[["Viewport"], None]] = []

    # -- geometry -----------------------------------------------------------

    @property
    def bottom(self) -> int:
        return self.top + self.n_rows - 1

    @property
    def right(self) -> int:
        return self.left + self.n_cols - 1

    def as_range(self) -> RangeAddress:
        return RangeAddress(
            CellAddress(self.top, self.left, sheet=self.sheet),
            CellAddress(self.bottom, self.right, sheet=self.sheet),
        )

    def contains(self, row: int, col: int) -> bool:
        return self.top <= row <= self.bottom and self.left <= col <= self.right

    def contains_key(self, key: CellKey) -> bool:
        sheet, row, col = key
        return sheet == self.sheet and self.contains(row, col)

    def overlaps(self, reference: RangeAddress, sheet: Optional[str] = None) -> bool:
        """True when any cell of ``reference`` is inside this viewport.

        ``sheet`` defaults to the range's own sheet tag; pass it explicitly
        for untagged ranges.  Used by the broadcast layer to decide whether
        a region-refresh delta is visible to a session."""
        range_sheet = sheet or reference.start.sheet or reference.end.sheet
        if range_sheet is not None and range_sheet != self.sheet:
            return False
        return not (
            reference.end.row < self.top
            or reference.start.row > self.bottom
            or reference.end.col < self.left
            or reference.start.col > self.right
        )

    def visible_predicate(self) -> Callable[[CellKey], bool]:
        """A predicate suitable for
        :meth:`repro.compute.scheduler.RecalcScheduler.set_visible_predicate`.
        Evaluates against the viewport's *current* position at call time."""
        return self.contains_key

    # -- movement ----------------------------------------------------------------

    def add_listener(self, listener: Callable[["Viewport"], None]) -> None:
        self._listeners.append(listener)

    def _moved(self) -> None:
        for listener in self._listeners:
            listener(self)

    def scroll_to(self, top: int, left: Optional[int] = None) -> None:
        self.top = max(0, top)
        if left is not None:
            self.left = max(0, left)
        self._moved()

    def scroll_by(self, d_rows: int, d_cols: int = 0) -> None:
        self.scroll_to(self.top + d_rows, self.left + d_cols)

    def page_down(self) -> None:
        self.scroll_by(self.n_rows)

    def page_up(self) -> None:
        self.scroll_by(-self.n_rows)

    def resize(self, n_rows: int, n_cols: int) -> None:
        if n_rows <= 0 or n_cols <= 0:
            raise ValueError("viewport dimensions must be positive")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self._moved()

    def row_window(self) -> Tuple[int, int]:
        """(first_row, row_count) — what a DBTABLE region should fetch."""
        return (self.top, self.n_rows)
