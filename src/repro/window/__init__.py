"""Window/pane management (paper §1 "Window", §2.2(d,e)).

"Spreadsheets have the notion of the current window, which is the portion
of the spreadsheet that the user is currently looking at; there is no such
notion in databases."  DataSpread makes the database window-aware: the
viewport drives which rows are fetched (via the positional index) and which
formulas are recomputed first (via the scheduler's visible predicate).
"""

from repro.window.viewport import Viewport
from repro.window.cache import WindowCache

__all__ = ["Viewport", "WindowCache"]
