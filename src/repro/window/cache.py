"""Window block cache with sequential prefetch.

When the user pans through a large `DBTABLE`, consecutive viewports overlap
heavily.  The cache stores fixed-size *row blocks* per source (table or
query), serves window requests from cached blocks, and prefetches the next
block in the scroll direction — the optimisation §2.2(d) alludes to
("leverage the presentation information for prioritizing computations for
the data that is displayed").

The cache is deliberately source-agnostic: a *fetcher* callable supplies
``(start_row, count) -> rows``; hit/miss/prefetch counters feed E4.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["WindowCache"]

Fetcher = Callable[[int, int], List[Tuple[Any, ...]]]


@dataclass
class _CacheStats:
    hits: int = 0
    misses: int = 0
    prefetches: int = 0
    evictions: int = 0


class WindowCache:
    """LRU cache of row blocks for one scrollable source."""

    def __init__(
        self,
        fetcher: Fetcher,
        block_rows: int = 128,
        capacity_blocks: int = 16,
        prefetch: bool = True,
    ):
        if block_rows <= 0 or capacity_blocks <= 0:
            raise ValueError("block_rows and capacity_blocks must be positive")
        self._fetcher = fetcher
        self.block_rows = block_rows
        self.capacity_blocks = capacity_blocks
        self.prefetch = prefetch
        self._blocks: "OrderedDict[int, List[Tuple[Any, ...]]]" = OrderedDict()
        self._last_block: Optional[int] = None
        self.stats = _CacheStats()

    # -- block plumbing -----------------------------------------------------

    def _load_block(self, block_index: int, count_as_prefetch: bool = False) -> List[Tuple[Any, ...]]:
        cached = self._blocks.get(block_index)
        if cached is not None:
            self._blocks.move_to_end(block_index)
            self.stats.hits += 1
            return cached
        if count_as_prefetch:
            self.stats.prefetches += 1
        else:
            self.stats.misses += 1
        rows = self._fetcher(block_index * self.block_rows, self.block_rows)
        self._blocks[block_index] = rows
        self._blocks.move_to_end(block_index)
        while len(self._blocks) > self.capacity_blocks:
            self._blocks.popitem(last=False)
            self.stats.evictions += 1
        return rows

    # -- public API -----------------------------------------------------------

    def window(self, start_row: int, count: int) -> List[Tuple[Any, ...]]:
        """Rows ``[start_row, start_row+count)`` assembled from blocks."""
        if count <= 0:
            return []
        first_block = start_row // self.block_rows
        last_block = (start_row + count - 1) // self.block_rows
        rows: List[Tuple[Any, ...]] = []
        for block_index in range(first_block, last_block + 1):
            block = self._load_block(block_index)
            block_start = block_index * self.block_rows
            lo = max(start_row - block_start, 0)
            hi = min(start_row + count - block_start, len(block))
            if lo < hi:
                rows.extend(block[lo:hi])
        # Directional prefetch: if the user keeps scrolling down, warm the
        # next block; scrolling up warms the previous one.
        if self.prefetch and self._last_block is not None:
            if last_block > self._last_block:
                self._load_block(last_block + 1, count_as_prefetch=True)
            elif first_block < self._last_block and first_block > 0:
                self._load_block(first_block - 1, count_as_prefetch=True)
        self._last_block = last_block
        return rows

    def invalidate(self, row: Optional[int] = None) -> None:
        """Drop all blocks, or only the block containing ``row`` (after a
        sync update touches that row)."""
        if row is None:
            self._blocks.clear()
            self._last_block = None
            return
        block_index = row // self.block_rows
        self._blocks.pop(block_index, None)
        if self._last_block == block_index:
            # The scroll-direction hint pointed at the dropped block; keep
            # it and the next window() would prefetch in a stale direction
            # (or re-fetch a neighbour of data that no longer exists).
            self._last_block = None

    @property
    def cached_blocks(self) -> int:
        return len(self._blocks)

    @property
    def hit_ratio(self) -> float:
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 0.0
