"""sqlite3 comparator for differential testing of the SQL engine.

The engine in :mod:`repro.engine` is built from scratch; the cheapest way
to gain confidence in its SELECT semantics is to run the same statements
against sqlite3 (stdlib, battle-tested) and compare result multisets.
Property-based tests in ``tests/test_differential_sqlite.py`` use this.

Only the common dialect subset is comparable — no RANGEVALUE/RANGETABLE,
no positional inserts, and sqlite's dynamic typing means we normalise
values (ints/floats unified, TEXT affinity respected) before comparing.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.engine.database import Database

__all__ = ["SqliteComparator"]


def _normalise(value: Any) -> Any:
    if isinstance(value, bool):
        return float(int(value))
    if isinstance(value, (int, float)):
        return float(value)
    return value


def _normalise_rows(rows: Iterable[Sequence[Any]]) -> List[Tuple[Any, ...]]:
    out = [tuple(_normalise(value) for value in row) for row in rows]
    out.sort(key=repr)
    return out


class SqliteComparator:
    """Runs the same script against both engines and compares results."""

    def __init__(self) -> None:
        self.database = Database()
        self.connection = sqlite3.connect(":memory:")

    def close(self) -> None:
        self.connection.close()

    def setup(self, statements: Iterable[str]) -> None:
        for statement in statements:
            self.database.execute(statement)
            self.connection.execute(statement)
        self.connection.commit()

    def rows_match(self, query: str) -> Tuple[bool, List, List]:
        """Execute ``query`` on both engines; True when the (unordered)
        result multisets agree after normalisation."""
        ours = _normalise_rows(self.database.execute(query).rows)
        theirs = _normalise_rows(self.connection.execute(query).fetchall())
        return (ours == theirs, ours, theirs)

    def assert_match(self, query: str) -> None:
        ok, ours, theirs = self.rows_match(query)
        if not ok:
            raise AssertionError(
                f"engine disagreement on {query!r}:\n  ours:   {ours[:10]}\n"
                f"  sqlite: {theirs[:10]}"
            )

    def ordered_match(self, query: str) -> Tuple[bool, List, List]:
        """Order-sensitive comparison (for ORDER BY queries)."""
        ours = [tuple(_normalise(v) for v in row) for row in self.database.execute(query).rows]
        theirs = [
            tuple(_normalise(v) for v in row)
            for row in self.connection.execute(query).fetchall()
        ]
        return (ours == theirs, ours, theirs)
