"""The traditional-spreadsheet baseline.

Models how plain spreadsheet software behaves on large data (paper §1:
"beyond a few 100s of thousands of rows, the software is no longer
responsive"):

* **loading a table materialises every row as cells** — there is no
  database to page from, so opening a 10⁶-row dataset costs O(10⁶) before
  the first cell renders (DataSpread fetches one window instead),
* **every edit recalculates every formula** — no dependency graph, the
  behaviour of naive recalculation engines (and a fair stand-in for the
  full-recalc pressure Excel exhibits on formula-heavy sheets),
* scrolling itself is cheap once loaded — the point E4 makes is about the
  up-front materialisation and memory, which is why the benchmark reports
  load time + first-window time.

The formula language is shared with DataSpread (same evaluator), so the
comparison isolates the *architecture*, not the expression interpreter.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.address import CellAddress
from repro.core.cell import coerce_scalar
from repro.errors import FormulaEvalError
from repro.formula.evaluator import EvalContext, RangeValues, evaluate_formula
from repro.formula.parser import parse_formula

__all__ = ["NaiveSpreadsheet"]


class _DictContext(EvalContext):
    def __init__(self, sheet: "NaiveSpreadsheet"):
        self._sheet = sheet

    def cell_value(self, address: CellAddress) -> Any:
        return self._sheet.values.get((address.row, address.col))

    def range_values(self, reference) -> RangeValues:
        grid = [
            [
                self._sheet.values.get((row, col))
                for col in range(reference.start.col, reference.end.col + 1)
            ]
            for row in range(reference.start.row, reference.end.row + 1)
        ]
        return RangeValues(grid)


class NaiveSpreadsheet:
    """All cells in one dict; recalc-all on every edit."""

    def __init__(self) -> None:
        self.values: Dict[Tuple[int, int], Any] = {}
        self.formulas: Dict[Tuple[int, int], Any] = {}  # key -> parsed AST
        self.recalc_count = 0
        self.cells_evaluated = 0

    # -- editing ----------------------------------------------------------

    def set(self, ref: str, raw: Any) -> None:
        address = CellAddress.parse(ref)
        self.set_at(address.row, address.col, raw)

    def set_at(self, row: int, col: int, raw: Any) -> None:
        key = (row, col)
        if isinstance(raw, str) and raw.startswith("="):
            self.formulas[key] = parse_formula(raw[1:])
            self.values[key] = None
        else:
            self.formulas.pop(key, None)
            self.values[key] = coerce_scalar(raw)
        self.recalc_all()

    def load_rows(
        self, rows: Sequence[Sequence[Any]], top: int = 0, left: int = 0
    ) -> int:
        """Materialise a table: one cell per value (no recalc per cell —
        even naive software batches imports; one recalc at the end)."""
        count = 0
        for row_offset, row in enumerate(rows):
            for col_offset, value in enumerate(row):
                self.values[(top + row_offset, left + col_offset)] = value
                count += 1
        self.recalc_all()
        return count

    def get(self, ref: str) -> Any:
        address = CellAddress.parse(ref)
        return self.values.get((address.row, address.col))

    def get_at(self, row: int, col: int) -> Any:
        return self.values.get((row, col))

    # -- recalculation (the expensive part) ----------------------------------

    def recalc_all(self) -> int:
        """Evaluate every formula until values stop changing (no dependency
        order available, so iterate to fixpoint with a bound)."""
        self.recalc_count += 1
        context = _DictContext(self)
        evaluated = 0
        for _ in range(max(len(self.formulas), 1)):
            changed = False
            for key, node in self.formulas.items():
                try:
                    value = evaluate_formula(node, context)
                    if isinstance(value, RangeValues):
                        value = "#VALUE!"
                except FormulaEvalError as error:
                    value = error.code
                evaluated += 1
                if self.values.get(key) != value:
                    self.values[key] = value
                    changed = True
            if not changed:
                break
        self.cells_evaluated += evaluated
        return evaluated

    # -- windowing --------------------------------------------------------------

    def window(self, top: int, n_rows: int, left: int, n_cols: int) -> List[List[Any]]:
        return [
            [self.values.get((row, col)) for col in range(left, left + n_cols)]
            for row in range(top, top + n_rows)
        ]

    @property
    def n_cells(self) -> int:
        return len(self.values)
