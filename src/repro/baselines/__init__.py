"""Baselines the paper's claims are measured against.

* :mod:`repro.baselines.naive_spreadsheet` — a traditional spreadsheet:
  everything materialised in memory, every edit recalculates every formula
  (related work (a): spreadsheet without a database).
* :mod:`repro.baselines.naive_db` — a vanilla RDBMS pressed into interface
  duty: positional access via an explicit rownum column and OFFSET scans,
  middle inserts renumber the tail (related work (b): database without
  interface awareness).
* :mod:`repro.baselines.sqlite_backend` — sqlite3 comparator used for
  differential correctness testing of our SQL engine.
"""

from repro.baselines.naive_spreadsheet import NaiveSpreadsheet
from repro.baselines.naive_db import NaiveDbTable
from repro.baselines.sqlite_backend import SqliteComparator

__all__ = ["NaiveSpreadsheet", "NaiveDbTable", "SqliteComparator"]
