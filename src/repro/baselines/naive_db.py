"""The vanilla-RDBMS baseline for positional operations (experiment E5).

A plain relational database has no notion of presentation position (paper
§2.2: "databases completely lack interface aspects").  The standard
workaround is an explicit ``rownum`` column:

* fetching the window ``[pos, pos+k)`` = ``WHERE rownum >= pos AND
  rownum < pos+k`` — a full scan, O(n),
* inserting in the middle = renumber every later row, O(n) updates,
* deleting = same renumbering.

:class:`NaiveDbTable` implements exactly that on top of the same storage
engine DataSpread uses (same pages, same buffer pool), so E5 isolates the
*positional index* as the only difference.  Counters record rows scanned
and rows renumbered; the pool's IOStats record blocks touched.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.engine.pager import BufferPool
from repro.engine.schema import Column, TableSchema
from repro.engine.store import GroupedTupleStore, LayoutPolicy
from repro.engine.types import DBType

__all__ = ["NaiveDbTable"]

_ROWNUM = "_rownum"


class NaiveDbTable:
    """Rownum-emulated positional access over the shared storage engine."""

    def __init__(
        self,
        columns: Sequence[Tuple[str, DBType]],
        pool: Optional[BufferPool] = None,
        page_capacity: int = 128,
    ):
        schema_columns = [Column(_ROWNUM, DBType.INTEGER)] + [
            Column(name, dtype) for name, dtype in columns
        ]
        self.schema = TableSchema(schema_columns)
        self.store = GroupedTupleStore(
            self.schema, pool, LayoutPolicy.ROW, page_capacity
        )
        self.rows_scanned = 0
        self.rows_renumbered = 0

    @property
    def n_rows(self) -> int:
        return self.store.n_rows

    # -- reads (OFFSET-style scans) ------------------------------------------

    def row_at(self, position: int) -> Tuple[Any, ...]:
        """O(n): scan until the matching rownum is found."""
        for rid, row in self.store.scan():
            self.rows_scanned += 1
            if row[0] == position:
                return row[1:]
        raise IndexError(f"position {position} out of range")

    def window(self, position: int, count: int) -> List[Tuple[Any, ...]]:
        """O(n): full scan filtering on the rownum range, then sort."""
        hits: List[Tuple[int, Tuple[Any, ...]]] = []
        for rid, row in self.store.scan():
            self.rows_scanned += 1
            if position <= row[0] < position + count:
                hits.append((row[0], row[1:]))
        hits.sort()
        return [row for _, row in hits]

    def scan_ordered(self) -> List[Tuple[Any, ...]]:
        rows = sorted(self.store.scan(), key=lambda item: item[1][0])
        self.rows_scanned += len(rows)
        return [row[1:] for _, row in rows]

    # -- writes (renumbering) ---------------------------------------------------

    def append(self, values: Sequence[Any]) -> int:
        return self.store.insert((self.store.n_rows,) + tuple(values))

    def insert_at(self, position: int, values: Sequence[Any]) -> int:
        """O(n): shift the rownum of every row at or after ``position``."""
        for rid, row in list(self.store.scan()):
            self.rows_scanned += 1
            if row[0] >= position:
                self.store.update_column(rid, _ROWNUM, row[0] + 1)
                self.rows_renumbered += 1
        return self.store.insert((position,) + tuple(values))

    def delete_at(self, position: int) -> Tuple[Any, ...]:
        """O(n): remove the row and renumber the tail."""
        victim_rid = None
        victim_row: Optional[Tuple[Any, ...]] = None
        for rid, row in list(self.store.scan()):
            self.rows_scanned += 1
            if row[0] == position:
                victim_rid, victim_row = rid, row
            elif row[0] > position:
                self.store.update_column(rid, _ROWNUM, row[0] - 1)
                self.rows_renumbered += 1
        if victim_rid is None:
            raise IndexError(f"position {position} out of range")
        self.store.delete(victim_rid)
        return victim_row[1:]

    def checkpoint(self) -> int:
        return self.store.checkpoint()
