"""Snapshot compaction: bound recovery time by log length.

Replaying a long WAL from an empty workbook is O(total edits ever made).
A snapshot pins a full :mod:`repro.core.persist`-format dump of the
workbook *plus the WAL position it covers*, so recovery becomes

    load snapshot  +  replay the WAL suffix past ``wal_offset``

— O(workbook) + O(edits since last compaction).  Snapshots are written
atomically (temp file + ``os.replace``) so a crash mid-compaction leaves
the previous snapshot intact, and the WAL itself is never rewritten: the
snapshot only *advances the replay start position*.

The compaction *policy* lives here too (:meth:`SnapshotStore.should_compact`);
the service calls it after every applied operation and compacts when the
suffix grows past ``compact_every`` operations.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.core.persist import workbook_from_dict, workbook_to_dict
from repro.core.workbook import Workbook
from repro.errors import ServerError

__all__ = ["SnapshotStore"]

#: Version 2 snapshots carry the workbook's tuned-layout state (advisor
#: flags, access statistics, in-flight migration targets) via the v2
#: persist format; version-1 snapshots still load (layout state defaults).
_SNAPSHOT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class SnapshotStore:
    """Reads and writes ``snapshot.json`` inside a service directory."""

    FILENAME = "snapshot.json"

    def __init__(self, directory: str, compact_every: int = 256):
        self.directory = directory
        self.compact_every = compact_every
        self.snapshots_written = 0

    @property
    def path(self) -> str:
        return os.path.join(self.directory, self.FILENAME)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- write ---------------------------------------------------------------

    def write(self, workbook: Workbook, wal_lsn: int, wal_offset: int) -> str:
        """Atomically persist the workbook + the WAL position it covers."""
        payload = {
            "version": _SNAPSHOT_VERSION,
            "wal_lsn": wal_lsn,
            "wal_offset": wal_offset,
            "workbook": workbook_to_dict(workbook),
        }
        temp_path = self.path + ".tmp"
        os.makedirs(self.directory, exist_ok=True)
        with open(temp_path, "w") as handle:
            json.dump(payload, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        self.snapshots_written += 1
        return self.path

    # -- read ------------------------------------------------------------------

    def load(self) -> Optional[Dict[str, Any]]:
        """The raw snapshot payload, or None when no snapshot exists."""
        if not self.exists():
            return None
        with open(self.path) as handle:
            payload = json.load(handle)
        if payload.get("version") not in _SUPPORTED_VERSIONS:
            raise ServerError(
                f"unsupported snapshot version {payload.get('version')!r}"
            )
        return payload

    def load_workbook(self, eager: bool = True) -> Optional[Workbook]:
        payload = self.load()
        if payload is None:
            return None
        return workbook_from_dict(payload["workbook"], eager=eager)

    # -- policy -----------------------------------------------------------------

    def should_compact(self, wal_lsn: int, snapshot_lsn: int, in_transaction: bool) -> bool:
        """Compact when the un-snapshotted suffix is long enough and no
        transaction is open (a snapshot must not capture uncommitted
        state)."""
        if in_transaction or self.compact_every <= 0:
            return False
        return (wal_lsn - snapshot_lsn) >= self.compact_every
