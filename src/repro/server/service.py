"""The durable multi-session workbook service.

This is the update-propagation path the ROADMAP's scaling story needs,
separated from the read/compute path (the Polynesia lesson): every
mutation flows through one pipeline —

    validate  →  WAL append  →  apply (core/sync fans out to regions)
              →  visible-first recalc (union of session viewports)
              →  viewport-scoped broadcast  →  maybe compact

Durability: operations are logged to a :class:`~repro.server.wal.WriteAheadLog`
*before* they mutate the workbook (a failed apply compensates by
truncating the just-appended record, keeping log ≡ applied history).
Recovery loads the last snapshot and replays the committed WAL suffix
(:func:`recover_state`); transactions only count as committed once their
``txn_commit`` marker is on disk, and a rollback physically discards the
bracket via the :class:`~repro.engine.transaction.TransactionManager`
hook — whichever code path drove it.

Concurrency: sessions are multiplexed cooperatively (one process, no
threads — the single-writer engine below is unchanged); *conflicts* are
handled optimistically.  Every applied operation bumps the service
version; cells and regions remember the version that last wrote them; a
``set_cell`` whose base version is older than the target's last write is
rejected with :class:`~repro.errors.StaleWriteError` carrying the
current version — the client polls its deltas (advancing its horizon)
and retries.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.core.address import CellAddress, RangeAddress
from repro.core.persist import workbook_from_dict
from repro.core.workbook import Workbook
from repro.engine import sql_ast
from repro.engine.database import ResultSet, _TXN_COMMANDS
from repro.engine.hybridstore import suggested_tick_budget
from repro.engine.maintenance import MaintenanceWorker
from repro.engine.sql_parser import parse_sql
from repro.errors import DataSpreadError, ServerError, SqlError, StaleWriteError
from repro.formula.parser import parse_formula
from repro.server.broadcast import Broadcaster, Delta
from repro.server.session import Session, SessionManager
from repro.server.snapshot import SnapshotStore
from repro.server.wal import WriteAheadLog, committed_ops, read_wal

__all__ = [
    "WorkbookService",
    "ApplyResult",
    "RecoveryResult",
    "validate_op",
    "apply_op",
    "recover_state",
]

WAL_FILENAME = "wal.jsonl"

#: Operation vocabulary (the WAL's logical schema).
OP_TYPES = (
    "set_cell",      # {sheet, ref, raw}
    "sql",           # {sql, params?}
    "add_sheet",     # {name}
    "dbtable",       # {sheet, anchor, table, include_headers?, window_rows?}
    "dbsql",         # {sheet, anchor, sql, include_headers?}
    "insert_rows",   # {sheet, at, count?}
    "delete_rows",
    "insert_cols",
    "delete_cols",
    "layout_set",    # {table, mode: auto|manual|row|column|target, groups?}
    "layout_step",   # {table, groups} — one applied migration restructure
    "index_create",  # {name, table, column, unique?, if_not_exists?}
    "index_drop",    # {name, if_exists?}
    "txn_begin",     # markers written by the transaction hook
    "txn_commit",
    "txn_rollback",
)

_STRUCTURAL = ("insert_rows", "delete_rows", "insert_cols", "delete_cols")
_LAYOUT_MODES = ("auto", "manual", "row", "column", "target")


def _txn_control(op: Dict[str, Any]) -> Optional[str]:
    """"begin"/"commit"/"rollback" when the op is transaction control."""
    if op.get("type") != "sql":
        return None
    return _TXN_COMMANDS.get(str(op.get("sql", "")).strip().rstrip(";").strip().lower())


def _is_readonly_sql(op: Dict[str, Any]) -> bool:
    """True for a plain SELECT: no state change, so nothing to log or
    replay — logging reads would bloat the WAL and make recovery
    O(all queries ever run)."""
    if op.get("type") != "sql" or _txn_control(op) is not None:
        return False
    statements = parse_sql(op["sql"])
    return len(statements) == 1 and isinstance(
        statements[0], (sql_ast.SelectStmt, sql_ast.CompoundSelect)
    )


def validate_op(workbook: Workbook, op: Any) -> None:
    """Reject malformed operations *before* they reach the WAL, so the log
    only ever contains applicable records."""
    if not isinstance(op, dict) or not isinstance(op.get("type"), str):
        raise ServerError(f"operation must be a dict with a 'type', got {op!r}")
    kind = op["type"]
    if kind not in OP_TYPES:
        raise ServerError(f"unknown operation type {kind!r}")
    if kind == "set_cell":
        workbook.sheet(str(op["sheet"]))  # raises SheetError when missing
        CellAddress.parse(str(op["ref"]))
        raw = op.get("raw")
        if isinstance(raw, str) and raw.startswith("="):
            parse_formula(raw[1:])  # syntax-check; install happens at apply
    elif kind == "sql":
        sql = op.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ServerError("sql operation requires a non-empty 'sql' string")
        if _txn_control(op) is None:
            statements = parse_sql(sql)
            if len(statements) != 1:
                raise SqlError(
                    f"sql operation takes one statement, got {len(statements)}"
                )
    elif kind == "add_sheet":
        name = op.get("name")
        if not isinstance(name, str) or not name:
            raise ServerError("add_sheet requires a non-empty 'name'")
    elif kind == "dbtable":
        workbook.sheet(str(op["sheet"]))
        CellAddress.parse(str(op["anchor"]))
        if not workbook.database.has_table(str(op["table"])):
            raise ServerError(f"no such table {op['table']!r}")
    elif kind == "dbsql":
        workbook.sheet(str(op["sheet"]))
        CellAddress.parse(str(op["anchor"]))
        if not isinstance(op.get("sql"), str) or not op["sql"].strip():
            raise ServerError("dbsql operation requires a non-empty 'sql' string")
    elif kind in _STRUCTURAL:
        workbook.sheet(str(op["sheet"]))
        if int(op["at"]) < 0 or int(op.get("count", 1)) < 1:
            raise ServerError(f"{kind} requires at >= 0 and count >= 1")
    elif kind in ("layout_set", "layout_step"):
        if not workbook.database.has_table(str(op.get("table", ""))):
            raise ServerError(f"no such table {op.get('table')!r}")
        mode = op.get("mode", "target")
        if kind == "layout_set" and mode not in _LAYOUT_MODES:
            raise ServerError(f"unknown layout mode {mode!r}")
        if kind == "layout_step" or mode == "target":
            groups = op.get("groups")
            well_formed = (
                isinstance(groups, list)
                and bool(groups)
                and all(
                    isinstance(group, list)
                    and bool(group)
                    and all(isinstance(name, str) for name in group)
                    for group in groups
                )
            )
            if not well_formed:
                raise ServerError(
                    f"{kind} requires 'groups': a non-empty list of "
                    "non-empty column-name lists"
                )
    elif kind == "index_create":
        for field_name in ("name", "table", "column"):
            if not isinstance(op.get(field_name), str) or not op[field_name]:
                raise ServerError(
                    f"index_create requires a non-empty {field_name!r} string"
                )
        if not workbook.database.has_table(str(op["table"])):
            raise ServerError(f"no such table {op['table']!r}")
    elif kind == "index_drop":
        if not isinstance(op.get("name"), str) or not op["name"]:
            raise ServerError("index_drop requires a non-empty 'name' string")
    # txn markers carry no payload worth validating


def apply_op(workbook: Workbook, op: Dict[str, Any]) -> Any:
    """Apply one logged operation to a live workbook (also the replay
    interpreter — recovery feeds committed records straight through
    here)."""
    kind = op["type"]
    if kind == "set_cell":
        workbook.set(op["sheet"], op["ref"], op["raw"])
        return None
    if kind == "sql":
        return workbook.execute(op["sql"], tuple(op.get("params") or ()))
    if kind == "add_sheet":
        return workbook.add_sheet(op["name"])
    if kind == "dbtable":
        return workbook.dbtable(
            op["sheet"],
            op["anchor"],
            op["table"],
            include_headers=op.get("include_headers", True),
            window_rows=op.get("window_rows"),
        )
    if kind == "dbsql":
        return workbook.dbsql(
            op["sheet"],
            op["anchor"],
            op["sql"],
            include_headers=op.get("include_headers", False),
        )
    if kind in _STRUCTURAL:
        method = getattr(workbook, kind)
        method(op["sheet"], int(op["at"]), int(op.get("count", 1)))
        return None
    if kind == "layout_set":
        table = workbook.database.table(op["table"])
        mode = op.get("mode", "target")
        if mode == "auto":
            table.set_auto_layout(True)
            return ResultSet()
        if mode == "manual":
            table.set_auto_layout(False)
            table.cancel_layout_migration()
            return ResultSet()
        if mode in ("row", "column"):
            # Same helper as the live ALTER ... SET LAYOUT path, so replay
            # cannot drift from what the server did.
            migration = table.set_static_layout(mode)
            return ResultSet(rowcount=migration.pages_written)
        # mode == "target": (re-)arm an online migration toward `groups`
        # (advisor-started live, or a replayed start record); the steps
        # themselves arrive as layout_step ops / maintenance ticks.
        table.migrate_layout([list(g) for g in op["groups"]], online=True)
        return ResultSet()
    if kind == "layout_step":
        table = workbook.database.table(op["table"])
        pages = table.store.restructure([list(g) for g in op["groups"]])
        # A replayed step lands outside the armed LayoutMigration object;
        # if it was the final one, retire the migration now so recovery
        # does not report a finished migration as still in flight.
        table.reconcile_layout_migration()
        return ResultSet(rowcount=pages)
    if kind == "index_create":
        # Same catalog helper as the live CREATE INDEX path, so replay
        # rebuilds the identical tree (and re-raises on real conflicts).
        workbook.database.catalog.create_index(
            op["name"],
            op["table"],
            op["column"],
            unique=bool(op.get("unique", False)),
            if_not_exists=bool(op.get("if_not_exists", False)),
        )
        return ResultSet()
    if kind == "index_drop":
        workbook.database.catalog.drop_index(
            op["name"], if_exists=bool(op.get("if_exists", False))
        )
        return ResultSet()
    if kind in ("txn_begin", "txn_commit", "txn_rollback"):
        return None  # markers: interpreted by committed_ops, not applied
    raise ServerError(f"unknown operation type {kind!r}")


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


@dataclass
class RecoveryResult:
    workbook: Workbook
    ops_replayed: int
    snapshot_used: bool
    snapshot_lsn: int
    last_lsn: int
    #: raw (records, intact_end, file_size) scan, reusable as
    #: :class:`WriteAheadLog` ``preread`` so startup reads the log once.
    wal_scan: Optional[Any] = None


def _check_snapshot_wal_alignment(
    records: List[Any], size: int, start_offset: int, snapshot_lsn: int, directory: str
) -> None:
    """Refuse to recover from a snapshot whose WAL no longer matches.

    A deleted-and-recreated (or truncated) log makes the
    ``offset >= start_offset`` suffix filter silently replay nothing —
    recovery would "succeed" with committed operations lost.  Detect the
    mismatch instead: the log must extend to the snapshot's covered
    offset, and the record ending exactly there must carry the
    snapshot's LSN (a recreated log restarts at LSN 1, so its record
    boundaries and LSNs cannot line up)."""
    if start_offset > size:
        raise ServerError(
            f"snapshot in {directory} covers the WAL up to byte "
            f"{start_offset}, but the log holds only {size} bytes — the "
            "WAL was truncated or deleted after the snapshot; committed "
            "operations are missing"
        )
    if start_offset == 0:
        return
    prefix = [record for record in records if record.end_offset <= start_offset]
    if (
        not prefix
        or prefix[-1].end_offset != start_offset
        or prefix[-1].lsn != snapshot_lsn
    ):
        found = prefix[-1].lsn if prefix else None
        raise ServerError(
            f"snapshot in {directory} expects LSN {snapshot_lsn} at WAL "
            f"byte {start_offset}, found {found!r} — the log does not "
            "match the snapshot (recreated or corrupted WAL)"
        )


def recover_state(directory: str, eager: bool = True) -> RecoveryResult:
    """Rebuild the durable workbook state from ``directory``:
    snapshot (if any) + committed WAL suffix.

    Raises :class:`~repro.errors.ServerError` when the WAL on disk cannot
    contain the history the snapshot claims to cover (see
    :func:`_check_snapshot_wal_alignment`)."""
    store = SnapshotStore(directory)
    payload = store.load()
    if payload is not None:
        workbook = workbook_from_dict(payload["workbook"], eager=eager)
        start_offset = int(payload["wal_offset"])
        snapshot_lsn = int(payload["wal_lsn"])
    else:
        workbook = Workbook(eager=eager)
        start_offset = 0
        snapshot_lsn = 0
    wal_path = os.path.join(directory, WAL_FILENAME)
    scan = read_wal(wal_path)
    records, intact_end, size = scan
    if payload is not None:
        _check_snapshot_wal_alignment(
            records, size, start_offset, snapshot_lsn, directory
        )
    suffix = [record for record in records if record.offset >= start_offset]
    ops = committed_ops(suffix)
    # Replay must be deterministic: the physical layout is reconstructed
    # from the snapshot plus logged layout_set/layout_step records, so the
    # advisor must not run its own (stats-driven, unlogged) migrations
    # while the history replays.
    database = workbook.database
    events = database.events
    if intact_end < size:
        events.record(
            "wal_repair",
            path=wal_path,
            truncated_bytes=size - intact_end,
            cause="torn_tail",
        )
    open_begin = None
    for record in records:
        kind = record.op.get("type")
        if kind == "txn_begin":
            open_begin = record
        elif kind in ("txn_commit", "txn_rollback"):
            open_begin = None
    if open_begin is not None:
        events.record(
            "wal_repair",
            path=wal_path,
            truncated_bytes=intact_end - open_begin.offset,
            cause="dangling_transaction",
        )
    if database.sanitizer.enabled:
        # The committed history must be dense — read_wal enforces this at
        # parse time, the sanitizer re-asserts it at the replay boundary.
        database.sanitizer.check_replay_lsns([record.lsn for record in records])
    saved_interval = database.auto_layout_interval
    database.auto_layout_interval = 0
    try:
        for op in ops:
            apply_op(workbook, op)
    finally:
        database.auto_layout_interval = saved_interval
    workbook.recalc_all()
    for table_name in database.table_names():
        table = database.table(table_name)
        if table.migration_active:
            events.record(
                "migration_resume",
                table=table_name,
                groups=table.layout_migration_target,
            )
    events.record(
        "recovery",
        directory=directory,
        snapshot_used=payload is not None,
        snapshot_lsn=snapshot_lsn,
        replayed_ops=len(ops),
        tables=len(database.table_names()),
    )
    return RecoveryResult(
        workbook=workbook,
        ops_replayed=len(ops),
        snapshot_used=payload is not None,
        snapshot_lsn=snapshot_lsn,
        last_lsn=records[-1].lsn if records else snapshot_lsn,
        wal_scan=scan,
    )


# ---------------------------------------------------------------------------
# Delta capture
# ---------------------------------------------------------------------------


class _DeltaCollector:
    """Accumulates cell writes and region refreshes during one apply."""

    def __init__(self) -> None:
        self.active = False
        self.cells: Dict[Tuple[str, int, int], Any] = {}
        self.regions: Dict[int, Any] = {}

    def start(self) -> None:
        self.active = True
        self.cells = {}
        self.regions = {}

    def stop(self) -> None:
        self.active = False

    def on_cell(self, key: Tuple[str, int, int], value: Any) -> None:
        if self.active:
            self.cells[key] = value

    def on_region(self, region: Any) -> None:
        if self.active:
            self.regions[region.context.region_id] = region

    def take(self) -> Tuple[Dict[Tuple[str, int, int], Any], Dict[int, Any]]:
        cells, regions = self.cells, self.regions
        self.cells, self.regions = {}, {}
        return cells, regions


@dataclass
class ApplyResult:
    """What one successful apply produced."""

    version: int
    lsn: Optional[int]
    deltas: List[Delta] = field(default_factory=list)
    visible_recalcs: int = 0
    result: Any = None


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class WorkbookService:
    """One durable workbook, N sessions, one apply pipeline."""

    def __init__(
        self,
        directory: str,
        workbook: Optional[Workbook] = None,
        sync_every: int = 32,
        fsync: bool = True,
        compact_every: int = 256,
        eager: bool = False,
        background_maintenance: Optional[bool] = None,
    ):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.snapshots = SnapshotStore(directory, compact_every=compact_every)
        self.recovered_ops = 0
        self._snapshot_lsn = 0
        wal_scan = None
        if workbook is None:
            recovery = recover_state(directory, eager=eager)
            workbook = recovery.workbook
            self.recovered_ops = recovery.ops_replayed
            self._snapshot_lsn = recovery.snapshot_lsn
            wal_scan = recovery.wal_scan
        elif self.snapshots.exists():
            payload = self.snapshots.load()
            self._snapshot_lsn = int(payload["wal_lsn"]) if payload else 0
        self.workbook = workbook
        self.wal = WriteAheadLog(
            os.path.join(directory, WAL_FILENAME),
            sync_every=sync_every,
            fsync=fsync,
            preread=wal_scan,
        )
        # One sanitizer per service: the WAL joins the database's.
        self.wal.sanitizer = workbook.database.sanitizer
        #: monotonic service version (starts where the log ends; never
        #: decreases — a rollback is itself a new version).
        self.version = max(self.wal.last_lsn, self._snapshot_lsn)
        self._cell_versions: Dict[Tuple[str, int, int], int] = {}
        self._region_versions: Dict[int, int] = {}
        self.sessions = SessionManager()
        self.broadcast = Broadcaster(self.sessions)
        self.workbook.compute.set_visible_predicate(
            self.sessions.visible_predicate()
        )
        self._collector = _DeltaCollector()
        self.workbook.cell_listeners.append(self._collector.on_cell)
        self.workbook.region_refresh_listeners.append(self._collector.on_region)
        self._txn_mark = None
        self.workbook.database.transactions.add_hook(self._on_txn_event)
        self.ops_applied = 0
        # The service takes over adaptive-layout maintenance from the
        # database's inline statement ticks: a migration stepped inside
        # Database.execute would re-partition the physical layout without
        # WAL-logging the transition, so a recovered server could never
        # converge to it.  The interval moves here and every transition is
        # appended to the log (see maintenance_tick).
        self._maintenance_interval = self.workbook.database.auto_layout_interval
        self.workbook.database.auto_layout_interval = 0
        self._ops_since_maintenance = 0
        # HTAP isolation (control layer).  The apply pipeline and every
        # background maintenance beat serialise on this lock: readers
        # (snapshot scans) never take it, appliers hold it briefly, and a
        # *budgeted* background beat holds it for a bounded restructure
        # slice instead of a whole migration.
        self._apply_lock = threading.RLock()
        # Layout transitions observed during a maintenance tick are
        # *queued* here and appended to the WAL at the next drain point on
        # the apply path (apply start, explicit tick, step, compact,
        # close) — the handoff that keeps the WAL single-threaded.  Each
        # record carries its absolute target grouping, so draining them
        # later than they occurred still replays to the same layout.
        self._layout_op_queue: Deque[Dict[str, Any]] = deque()
        if background_maintenance is None:
            background_maintenance = self.workbook.database.background_maintenance
        self.background_maintenance = background_maintenance
        # The service owns the worker; the embedded database must not
        # spin up its own (its inline interval is already zeroed above).
        self.workbook.database.background_maintenance = False
        self._maintenance_worker: Optional[MaintenanceWorker] = None
        # Restructure-work budget per maintenance beat (blocks); None =
        # unbudgeted, the historical behaviour.  Operators serving large
        # tables set this so layout migrations never monopolise a beat.
        self.layout_tick_budget: Optional[int] = None
        # Observability: the service reports through the workbook's
        # database registry/tracer/event log — one surface for all layers.
        database = self.workbook.database
        self.metrics = database.metrics_registry
        self.tracer = database.tracer
        self.events = database.events
        self._apply_counter = self.metrics.counter(
            "server_applies_total", "operations run through the apply pipeline"
        )
        self._apply_seconds = self.metrics.histogram(
            "server_apply_seconds", "apply pipeline latency (seconds)"
        )
        self._server_collector = self.metrics.register_collector(
            self._collect_server_metrics
        )

    # -- observability -------------------------------------------------------

    def _collect_server_metrics(self) -> Dict[str, Any]:
        """Pull-collector over the service's existing counters (WAL,
        broadcast, sessions) — read at scrape time, never double-counted
        on the apply path."""
        wal = self.wal.stats
        return {
            "server_version": self.version,
            "server_ops_applied": self.ops_applied,
            "server_recovered_ops": self.recovered_ops,
            "server_sessions": len(self.sessions),
            "server_snapshots_written": self.snapshots.snapshots_written,
            "wal_lsn": self.wal.last_lsn,
            "wal_appends": wal.appends,
            "wal_syncs": wal.syncs,
            "wal_truncations": wal.truncations,
            "wal_bytes_written": wal.bytes_written,
            "snapshot_lsn": self._snapshot_lsn,
            "broadcast_published": self.broadcast.published,
            "broadcast_delivered": self.broadcast.delivered,
            "broadcast_suppressed": self.broadcast.suppressed,
            "server_layout_queue": len(self._layout_op_queue),
            "server_maint_worker_beats": (
                self._maintenance_worker.beats
                if self._maintenance_worker is not None
                else 0
            ),
        }

    def trace_apply(
        self,
        session_id: int,
        op: Dict[str, Any],
        base_version: Optional[int] = None,
    ) -> Tuple["ApplyResult", Any]:
        """Run one apply with the span tracer active; returns
        ``(apply_result, span_tree)`` covering WAL append, apply, recalc
        and broadcast phases."""
        root = self.tracer.begin("apply")
        root.add("op", str(op.get("type")))
        try:
            with root:
                result = self.apply(session_id, op, base_version=base_version)
        finally:
            tree = self.tracer.finish()
            self.workbook.database.last_trace = tree
        return result, tree

    # -- sessions -------------------------------------------------------------

    def connect(
        self,
        name: Optional[str] = None,
        sheet: Optional[str] = None,
        top: int = 0,
        left: int = 0,
        n_rows: int = 40,
        n_cols: int = 20,
    ) -> Session:
        """Open a session with its own viewport, synced to the current
        version (it has implicitly 'seen' everything already applied)."""
        sheet_name = sheet or self.workbook.sheet_names()[0]
        return self.sessions.open(
            name=name,
            sheet=sheet_name,
            top=top,
            left=left,
            n_rows=n_rows,
            n_cols=n_cols,
            version=self.version,
        )

    def disconnect(self, session_id: int) -> None:
        self.sessions.close(session_id)

    def poll(self, session_id: int) -> List[Delta]:
        """Drain a session's inbox and advance its version horizon to the
        service's current version.  Polling means "I have seen everything
        visible to me as of now" — changes outside the viewport were
        filtered by broadcast and can never appear in the inbox, so
        without this a write rejected because of an *off-screen* change
        could be re-rejected forever."""
        session = self.sessions.get(session_id)
        deltas = session.poll()
        if self.version > session.last_seen_version:
            session.last_seen_version = self.version
        return deltas

    # -- transaction hook ------------------------------------------------------

    def _on_txn_event(self, event: str, txn_id: int) -> None:
        if event == "begin":
            self._txn_mark = self.wal.mark()
            self.wal.append({"type": "txn_begin", "txn": txn_id})
        elif event == "commit":
            # The commit marker IS the durability point: fsync immediately.
            self.wal.append({"type": "txn_commit", "txn": txn_id}, sync=True)
            self._txn_mark = None
        elif event == "rollback":
            if self._txn_mark is not None:
                self.wal.truncate_to(self._txn_mark)
                self._txn_mark = None

    # -- the apply pipeline -----------------------------------------------------

    def apply(
        self,
        session_id: int,
        op: Dict[str, Any],
        base_version: Optional[int] = None,
    ) -> ApplyResult:
        """Run one operation through the full pipeline on behalf of a
        session.  Raises :class:`StaleWriteError` when the optimistic
        version check fails (nothing is logged or applied in that case)."""
        # Gate the perf_counter pair on the enabled flag: metrics off
        # costs one boolean test per apply.
        timed = self.metrics.enabled
        started = time.perf_counter() if timed else 0.0
        try:
            with self._apply_lock:
                return self._apply(session_id, op, base_version)
        finally:
            if timed:
                self._apply_counter.value += 1
                self._apply_seconds.observe(time.perf_counter() - started)

    def _apply(
        self,
        session_id: int,
        op: Dict[str, Any],
        base_version: Optional[int] = None,
    ) -> ApplyResult:
        session = self.sessions.get(session_id)
        base = session.last_seen_version if base_version is None else base_version
        validate_op(self.workbook, op)
        self._check_stale(session, op, base)
        control = _txn_control(op)
        if (
            self.workbook.database.in_transaction
            and control is None
            and op["type"] != "sql"
        ):
            # The engine's undo log only covers database mutations, so a
            # rolled-back sheet edit would diverge live state from the
            # truncated WAL.  Refuse rather than corrupt.
            raise ServerError(
                f"{op['type']} operations cannot run inside an open "
                "transaction (only SQL participates in rollback)"
            )
        op = self._promote_layout_sql(op)
        op = self._promote_index_sql(op)
        # Flush background layout records *before* taking the rollback
        # mark: they are maintenance history, not part of this operation,
        # and must never be truncated with it.
        self._drain_layout_queue()
        mark = self.wal.mark()
        lsn: Optional[int] = None
        if (
            control is None
            and op["type"] not in ("txn_begin", "txn_commit", "txn_rollback")
            and not _is_readonly_sql(op)
        ):
            with self.tracer.span("wal_append") as wal_span:
                unsynced_before = self.wal.stats.syncs
                lsn = self.wal.append(op).lsn
                wal_span.add("lsn", lsn)
                wal_span.add("synced", self.wal.stats.syncs - unsynced_before)
        self._collector.start()
        try:
            try:
                with self.tracer.span("apply_op"):
                    result = apply_op(self.workbook, op)
            except DataSpreadError as error:
                # Expected engine/server failure: compensate the WAL (the
                # log must equal the applied history), leave a structured
                # trace of what was rejected, and re-raise for the caller.
                if lsn is not None:
                    self.wal.truncate_to(mark)
                self.events.record(
                    "apply_error",
                    op=str(op.get("type")),
                    error=type(error).__name__,
                    message=str(error),
                    lsn=lsn,
                )
                raise
            except BaseException:
                # Unexpected failure (engine bug, KeyboardInterrupt): still
                # compensate so log ≡ applied holds even then.
                if lsn is not None:
                    self.wal.truncate_to(mark)
                raise
            if op["type"] in _STRUCTURAL:
                self._remap_cell_versions(op)
            with self.tracer.span("recalc_visible") as recalc_span:
                visible = self.workbook.compute.recalc_visible()
                recalc_span.add("visible_recalcs", visible)
            self.version += 1
            self.ops_applied += 1
            deltas = self._drain_deltas(origin=session_id)
            if op["type"] in _STRUCTURAL:
                # One compact delta describes the whole half-space shift —
                # clients remap their pane instead of receiving a cell
                # delta for every relocated position.
                signed = int(op.get("count", 1))
                if op["type"].startswith("delete"):
                    signed = -signed
                deltas.insert(
                    0,
                    Delta(
                        kind="shift",
                        sheet=op["sheet"],
                        version=self.version,
                        origin=session_id,
                        axis="row" if op["type"].endswith("rows") else "col",
                        at=int(op["at"]),
                        count=signed,
                    ),
                )
            with self.tracer.span("broadcast") as broadcast_span:
                self.broadcast.publish(deltas, origin=session_id)
                broadcast_span.add("deltas", len(deltas))
            session.last_seen_version = self.version
            session.writes_applied += 1
        finally:
            self._collector.stop()
        self._maybe_maintain()
        self.maybe_compact()
        return ApplyResult(
            version=self.version,
            lsn=lsn,
            deltas=deltas,
            visible_recalcs=visible,
            result=result,
        )

    def _promote_layout_sql(self, op: Dict[str, Any]) -> Dict[str, Any]:
        """``ALTER TABLE ... SET LAYOUT`` becomes a first-class
        ``layout_set`` record, so the WAL captures the layout transition
        semantically rather than as opaque SQL text.  Inside an open
        transaction the statement stays SQL: rollback of a layout change
        rides the engine's undo log, and the bracket's records are
        discarded wholesale."""
        if op.get("type") != "sql" or self.workbook.database.in_transaction:
            return op
        # Cheap gate before re-parsing on the apply hot path: every
        # SET LAYOUT statement contains the keyword.
        if "layout" not in op["sql"].lower():
            return op
        if _txn_control(op) is not None:
            return op
        statements = parse_sql(op["sql"])
        if len(statements) == 1 and isinstance(statements[0], sql_ast.AlterTableStmt):
            action = statements[0].action
            if isinstance(action, sql_ast.AlterSetLayout):
                return {
                    "type": "layout_set",
                    "table": statements[0].table,
                    "mode": action.mode,
                }
        return op

    def _promote_index_sql(self, op: Dict[str, Any]) -> Dict[str, Any]:
        """``CREATE/DROP INDEX`` becomes a first-class ``index_create`` /
        ``index_drop`` record — recovery then replays the index DDL
        semantically (and a snapshot can cover it) instead of re-parsing
        opaque SQL text.  Inside an open transaction the statement stays
        SQL so rollback rides the engine's undo log, mirroring
        :meth:`_promote_layout_sql`."""
        if op.get("type") != "sql" or self.workbook.database.in_transaction:
            return op
        # Cheap gate before re-parsing on the apply hot path.
        if "index" not in op["sql"].lower():
            return op
        if _txn_control(op) is not None:
            return op
        statements = parse_sql(op["sql"])
        if len(statements) != 1:
            return op
        statement = statements[0]
        if isinstance(statement, sql_ast.CreateIndexStmt):
            return {
                "type": "index_create",
                "name": statement.name,
                "table": statement.table,
                "column": statement.column,
                "unique": statement.unique,
                "if_not_exists": statement.if_not_exists,
            }
        if isinstance(statement, sql_ast.DropIndexStmt):
            return {
                "type": "index_drop",
                "name": statement.name,
                "if_exists": statement.if_exists,
            }
        return op

    def _remap_cell_versions(self, op: Dict[str, Any]) -> None:
        """Mirror a structural shift in the optimistic-concurrency map.

        ``_cell_versions`` is keyed by logical ``(sheet, row, col)``;
        after an insert/delete of rows or columns the stamps must move
        with their cells (the shift delta's half-space translation) and
        stamps of deleted cells must be dropped.  Without this, a stale
        write silently clobbers a moved-but-modified cell — the exact
        thing the module docstring promises never happens — and is
        spuriously rejected by the ghost version of whatever used to
        occupy the coordinates it targets."""
        sheet = op["sheet"]
        axis_is_row = op["type"].endswith("rows")
        at = int(op["at"])
        count = int(op.get("count", 1))
        delta = -count if op["type"].startswith("delete") else count
        removed = count if delta < 0 else 0
        remapped: Dict[Tuple[str, int, int], int] = {}
        for key, version in self._cell_versions.items():
            key_sheet, row, col = key
            coordinate = row if axis_is_row else col
            if key_sheet != sheet or coordinate < at:
                remapped[key] = version
                continue
            if removed and coordinate < at + removed:
                continue  # the stamped cell itself was deleted
            if axis_is_row:
                remapped[(key_sheet, row + delta, col)] = version
            else:
                remapped[(key_sheet, row, col + delta)] = version
        self._cell_versions = remapped

    # Convenience wrappers (what a client library would expose).

    def set_cell(
        self,
        session_id: int,
        sheet: str,
        ref: Any,
        raw: Any,
        base_version: Optional[int] = None,
    ) -> ApplyResult:
        address = ref if isinstance(ref, CellAddress) else CellAddress.parse(str(ref))
        op = {
            "type": "set_cell",
            "sheet": sheet,
            "ref": address.to_a1(include_sheet=False),
            "raw": raw,
        }
        return self.apply(session_id, op, base_version=base_version)

    def execute(
        self, session_id: int, sql: str, params: Tuple[Any, ...] = ()
    ) -> ApplyResult:
        op: Dict[str, Any] = {"type": "sql", "sql": sql}
        if params:
            op["params"] = list(params)
        return self.apply(session_id, op)

    # -- staleness -----------------------------------------------------------------

    def _check_stale(self, session: Session, op: Dict[str, Any], base: int) -> None:
        if op.get("type") != "set_cell":
            return  # SQL/DDL/structural ops are authoritative, not optimistic
        address = CellAddress.parse(str(op["ref"]))
        key = (op["sheet"], address.row, address.col)
        newest = self._cell_versions.get(key, 0)
        region = self.workbook.regions.region_at(*key)
        if region is not None:
            newest = max(
                newest,
                self._region_versions.get(region.context.region_id, 0),
            )
        if newest > base:
            session.writes_rejected += 1
            raise StaleWriteError(
                f"cell {op['sheet']}!{op['ref']} was modified at version "
                f"{newest}, newer than the session's base {base}; refresh "
                "and retry",
                current_version=self.version,
            )

    # -- delta assembly ---------------------------------------------------------------

    def _drain_deltas(self, origin: Optional[int]) -> List[Delta]:
        cells, regions = self._collector.take()
        deltas: List[Delta] = []
        region_areas: List[Tuple[str, RangeAddress]] = []
        for region in regions.values():
            context = region.context
            area = context.extent or RangeAddress(context.anchor, context.anchor)
            region_areas.append((context.sheet, area))
            self._region_versions[context.region_id] = self.version
            deltas.append(
                Delta(
                    kind="region",
                    sheet=context.sheet,
                    version=self.version,
                    origin=origin,
                    region_id=context.region_id,
                    area=area,
                    description=context.description,
                )
            )
        for key, value in cells.items():
            sheet, row, col = key
            covered = any(
                sheet == region_sheet and area.contains(CellAddress(row, col))
                for region_sheet, area in region_areas
            )
            self._cell_versions[key] = self.version
            if covered:
                continue  # the region delta already announces this cell
            deltas.append(
                Delta(
                    kind="cell",
                    sheet=sheet,
                    version=self.version,
                    origin=origin,
                    row=row,
                    col=col,
                    value=value,
                )
            )
        return deltas

    # -- background compute ------------------------------------------------------------

    def step(self, budget: int = 64) -> int:
        """Run a slice of non-visible recalc work and broadcast what it
        produced (a cell can be visible to a session even though no apply
        touched it — e.g. after a scroll).  Each step is also a beat of
        the serve loop's adaptive-layout maintenance, so a recovered
        server keeps adapting (and resumes a restored half-done
        migration) even while no edits arrive."""
        with self._apply_lock:
            self._collector.start()
            try:
                computed = self.workbook.background_step(budget)
                if computed:
                    self.version += 1
                    deltas = self._drain_deltas(origin=None)
                    self.broadcast.publish(deltas, origin=None)
            finally:
                self._collector.stop()
        if self._maintenance_interval:
            # The implicit serve-loop beat honours interval=0 = maintenance
            # off and otherwise shares the apply cadence counter, except
            # that an in-flight migration is stepped every beat so it makes
            # progress on an idle server; the advisor itself is only
            # consulted every Nth beat (its answer cannot change between
            # beats with no applies).  An explicit maintenance_tick() call
            # remains an operator override.
            migrating = any(
                table.migration_active
                for table in self.workbook.database.catalog.tables()
            )
            self._ops_since_maintenance += 1
            if migrating or self._ops_since_maintenance >= self._maintenance_interval:
                self._ops_since_maintenance = 0
                if self.background_maintenance:
                    # Serve-loop beats only nudge the worker; queued
                    # layout records still flush on this (apply) thread.
                    with self._apply_lock:
                        self._drain_layout_queue()
                    self.ensure_maintenance_worker().wake()
                else:
                    self.maintenance_tick()
                    self.maybe_compact()
        return computed

    # -- adaptive-layout maintenance ---------------------------------------------

    def maintenance_tick(
        self, steps: int = 2, max_blocks: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """One beat of :meth:`Database.maintenance_tick` with *durable*
        layout transitions: an advisor-started migration is logged as a
        ``layout_set`` (mode ``target``) record and every applied
        restructure step as a ``layout_step`` record, so the committed-
        suffix replay converges to the same physical layout the live
        server had.

        ``max_blocks`` (default: the service's ``layout_tick_budget``)
        caps each table's restructure work per beat so a big migration is
        spread over many beats instead of stalling the serve loop."""
        database = self.workbook.database
        if database.in_transaction:
            return []
        if max_blocks is None:
            max_blocks = self.layout_tick_budget
        with self._apply_lock:
            reports = database.maintenance_tick(
                steps, observer=self._on_layout_transition, max_blocks=max_blocks
            )
            # Synchronous ticks flush their own transitions immediately —
            # the record order in the log is then identical to the
            # historical append-inside-the-tick behaviour.
            self._drain_layout_queue()
        return reports

    def _maybe_maintain(self) -> None:
        """The apply-pipeline cadence: tick maintenance every
        ``auto_layout_interval`` applied operations (the interval the
        database would have used for its inline statement ticks).  With
        background maintenance on, the cadence only wakes the worker —
        the beat itself leaves the apply path."""
        if not self._maintenance_interval:
            return
        self._ops_since_maintenance += 1
        if self._ops_since_maintenance < self._maintenance_interval:
            return
        self._ops_since_maintenance = 0
        if self.background_maintenance:
            if any(
                table.auto_layout or table.migration_active
                for table in self.workbook.database.catalog.tables()
            ):
                self.ensure_maintenance_worker().wake()
            return
        self.maintenance_tick()

    def _background_beat(self) -> bool:
        """One bounded service-level maintenance beat (worker thread).

        Runs a budgeted layout/encoding tick, flushes the layout-record
        queue, and compacts if due — all under the apply lock, so the
        WAL and workbook state only ever change under one serialised
        regime.  Returns True while more migration work remains."""
        database = self.workbook.database
        if database.in_transaction:
            return False
        with self._apply_lock:
            if database.in_transaction:
                return False
            candidates = [
                table
                for table in database.catalog.tables()
                if table.auto_layout or table.migration_active
            ]
            if not candidates:
                self._drain_layout_queue()
                return False
            budget = self.layout_tick_budget
            if budget is None:
                budget = max(
                    suggested_tick_budget(
                        table.n_rows, database.catalog.pool.page_capacity
                    )
                    for table in candidates
                )
            reports = database.maintenance_tick(
                steps=2, observer=self._on_layout_transition, max_blocks=budget
            )
            self._drain_layout_queue()
            self.maybe_compact()
            return bool(reports)

    def ensure_maintenance_worker(self) -> MaintenanceWorker:
        """The lazily created background worker (started on return)."""
        worker = self._maintenance_worker
        if worker is None:
            worker = self._maintenance_worker = MaintenanceWorker(
                self._background_beat,
                name=f"repro-maintenance:{os.path.basename(self.directory)}",
                events=self.events,
                histogram=self.metrics.histogram(
                    "db_maint_tick_seconds",
                    "maintenance beat latency (seconds)",
                ),
            )
        return worker.start()

    @property
    def maintenance_worker(self) -> Optional[MaintenanceWorker]:
        return self._maintenance_worker

    def _on_layout_transition(
        self, table_name: str, event: str, groups: List[List[str]]
    ) -> None:
        """Queue one layout transition observed during a maintenance
        tick for WAL logging.  Transitions are *queued*, not appended,
        because a tick may run on the maintenance thread while an apply
        holds the log; the queue drains on the apply path (see
        :meth:`_drain_layout_queue`).  Records carry absolute target
        groupings, so a crash that loses queued records still recovers:
        the logged migration start (or the snapshot's
        ``migration_target``) re-arms the migration, which the serve
        loop then completes."""
        payload = [list(group) for group in groups]
        if event == "start":
            op: Dict[str, Any] = {
                "type": "layout_set",
                "table": table_name,
                "mode": "target",
                "groups": payload,
            }
        else:
            op = {"type": "layout_step", "table": table_name, "groups": payload}
        self._layout_op_queue.append(op)

    def _drain_layout_queue(self) -> int:
        """Append queued layout transitions to the WAL in observation
        order; returns records written.  A no-op inside an open
        transaction — maintenance records must not land inside a txn
        bracket, where a rollback's truncate would discard them — the
        queue simply holds them for the next drain point."""
        if not self._layout_op_queue or self.workbook.database.in_transaction:
            return 0
        ops: List[Dict[str, Any]] = []
        while True:
            try:
                ops.append(self._layout_op_queue.popleft())
            except IndexError:
                break
        if ops:
            self.wal.append_many(ops)
        return len(ops)

    # -- compaction ----------------------------------------------------------------------

    def compact(self, force: bool = False) -> Optional[str]:
        """Write a snapshot covering the current WAL position."""
        if self.workbook.database.in_transaction:
            if force:
                raise ServerError("cannot snapshot inside an open transaction")
            return None
        with self._apply_lock:
            return self._compact_locked()

    def _compact_locked(self) -> Optional[str]:
        # Queued background layout records are part of the history the
        # snapshot is about to cover — flush them first so the snapshot's
        # WAL offset really does include every applied transition.
        self._drain_layout_queue()
        self.wal.sync()
        covered_before = self._snapshot_lsn
        path = self.snapshots.write(
            self.workbook, self.wal.last_lsn, self.wal.end_offset
        )
        self._snapshot_lsn = self.wal.last_lsn
        self.events.record(
            "snapshot_compaction",
            directory=self.directory,
            lsn=self.wal.last_lsn,
            ops_covered=self.wal.last_lsn - covered_before,
            wal_bytes=self.wal.end_offset,
        )
        return path

    def maybe_compact(self) -> Optional[str]:
        if self.snapshots.should_compact(
            self.wal.last_lsn,
            self._snapshot_lsn,
            self.workbook.database.in_transaction,
        ):
            return self.compact()
        return None

    # -- lifecycle ----------------------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Shut the service down.  ``drain=True`` (clean shutdown) runs
        background maintenance to quiescence and flushes queued layout
        records before the log closes; ``drain=False`` models a crash —
        recovery re-arms any half-done migration from the last logged
        target and the serve loop finishes it."""
        worker = self._maintenance_worker
        if worker is not None:
            worker.stop(drain=drain)
            self._maintenance_worker = None
        with self._apply_lock:
            if drain:
                self._drain_layout_queue()
            self.wal.close()
        self.workbook.database.auto_layout_interval = self._maintenance_interval
        self.metrics.remove_collector(self._server_collector)
        try:
            self.workbook.database.transactions.remove_hook(self._on_txn_event)
            self.workbook.cell_listeners.remove(self._collector.on_cell)
            self.workbook.region_refresh_listeners.remove(self._collector.on_region)
        except ValueError:  # pragma: no cover - already detached
            pass

    def __enter__(self) -> "WorkbookService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- stats -------------------------------------------------------------------------

    def stats_summary(self) -> Dict[str, Any]:
        """Registry-backed service summary.

        The numbers come from one :meth:`MetricsRegistry.snapshot` (the
        same scrape the CLI ``metrics`` command exports); the historical
        keys are kept as aliases so existing tests and REPL output stay
        stable, and the full flat snapshot rides along under
        ``"metrics"``."""
        snap = self.metrics.snapshot()
        return {
            "version": snap["server_version"],
            "ops_applied": snap["server_ops_applied"],
            "recovered_ops": snap["server_recovered_ops"],
            "sessions": snap["server_sessions"],
            "wal": self.wal.stats,
            "wal_lsn": snap["wal_lsn"],
            "snapshot_lsn": snap["snapshot_lsn"],
            "snapshots_written": snap["server_snapshots_written"],
            "broadcast": {
                "published": snap["broadcast_published"],
                "delivered": snap["broadcast_delivered"],
                "suppressed": snap["broadcast_suppressed"],
            },
            "maintenance": {
                "background": self.background_maintenance,
                "worker_running": (
                    self._maintenance_worker is not None
                    and self._maintenance_worker.running
                ),
                "worker_beats": snap["server_maint_worker_beats"],
                "ticks": snap.get("db_maint_ticks", 0),
                "blocks": snap.get("db_maint_blocks", 0),
                "queued_layout_ops": snap["server_layout_queue"],
            },
            "metrics": snap,
        }
