"""Client sessions: N viewports over one workbook.

Each connected client gets a :class:`Session` — a viewport (reusing
:class:`repro.window.viewport.Viewport`), an inbox of deltas scoped to
that viewport (:mod:`repro.server.broadcast`), and the optimistic
concurrency bookkeeping: ``last_seen_version`` is the newest service
version the session has observed (bumped by its own applies and by
polling its inbox).  A write based on an older version than the target
cell's last modification is rejected with
:class:`~repro.errors.StaleWriteError` — never silently clobbered — and
the client refreshes (polls) and retries.

The :class:`SessionManager` also derives the *visible predicate* the
compute scheduler prioritises by: a cell is "visible" when any open
session's viewport contains it, so the service recalculates what someone
is actually looking at first (paper §2.2(e), generalised to N panes).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.compute.graph import CellKey
from repro.compute.scheduler import union_predicate
from repro.errors import SessionError
from repro.window.viewport import Viewport

__all__ = ["Session", "SessionManager"]


class Session:
    """One client's connection state."""

    def __init__(self, session_id: int, name: str, viewport: Viewport, version: int):
        self.session_id = session_id
        self.name = name
        self.viewport = viewport
        self.last_seen_version = version
        self.inbox: Deque[Any] = deque()
        self.closed = False
        self.deltas_received = 0
        self.writes_applied = 0
        self.writes_rejected = 0

    # -- delta intake ---------------------------------------------------------

    def deliver(self, delta: Any) -> None:
        self.inbox.append(delta)
        self.deltas_received += 1

    def poll(self) -> List[Any]:
        """Drain the inbox; observing a delta advances the session's
        version horizon (so a subsequent write is no longer stale with
        respect to the changes it just saw)."""
        deltas = list(self.inbox)
        self.inbox.clear()
        for delta in deltas:
            version = getattr(delta, "version", None)
            if version is not None and version > self.last_seen_version:
                self.last_seen_version = version
        return deltas

    @property
    def pending_deltas(self) -> int:
        return len(self.inbox)

    # -- viewport --------------------------------------------------------------

    def scroll_to(self, top: int, left: Optional[int] = None) -> None:
        self.viewport.scroll_to(top, left)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Session #{self.session_id} {self.name!r} "
            f"v{self.last_seen_version} {self.viewport.as_range().to_a1()}>"
        )


class SessionManager:
    """Opens, closes and enumerates sessions; derives shared visibility."""

    def __init__(self) -> None:
        self._sessions: Dict[int, Session] = {}
        self._next_id = 1
        self.opened = 0
        self.closed_count = 0
        #: live list of per-session viewport predicates; mutated on
        #: open/close, shared by reference with the union predicate.
        self._predicates: List[Callable[[CellKey], bool]] = []
        self._predicate_of: Dict[int, Callable[[CellKey], bool]] = {}

    def open(
        self,
        name: Optional[str] = None,
        sheet: str = "Sheet1",
        top: int = 0,
        left: int = 0,
        n_rows: int = 40,
        n_cols: int = 20,
        version: int = 0,
        viewport: Optional[Viewport] = None,
    ) -> Session:
        session_id = self._next_id
        self._next_id += 1
        pane = viewport if viewport is not None else Viewport(
            sheet, top=top, left=left, n_rows=n_rows, n_cols=n_cols
        )
        session = Session(session_id, name or f"session-{session_id}", pane, version)
        self._sessions[session_id] = session
        predicate = session.viewport.contains_key
        self._predicates.append(predicate)
        self._predicate_of[session_id] = predicate
        self.opened += 1
        return session

    def close(self, session_id: int) -> None:
        session = self.get(session_id)
        session.closed = True
        del self._sessions[session_id]
        self._predicates.remove(self._predicate_of.pop(session_id))
        self.closed_count += 1

    def get(self, session_id: int) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"no such session #{session_id}") from None

    def sessions(self) -> List[Session]:
        return list(self._sessions.values())

    def __len__(self) -> int:
        return len(self._sessions)

    def visible_predicate(self) -> Callable[[CellKey], bool]:
        """True where any *currently open* session's viewport contains the
        cell.  The union is over a live predicate list, so opening,
        closing and scrolling sessions needs no re-registration."""
        return union_predicate(self._predicates)
