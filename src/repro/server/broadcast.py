"""Viewport-scoped delta subscriptions.

When an edit wins, every *other* session should learn about it — but only
if it can see it: a session panned to row 90,000 does not care that A1
changed, and at millions of users shipping every change to every client
is exactly the O(users × edits) blow-up the windowing architecture
avoids.  The :class:`Broadcaster` therefore filters each outgoing
:class:`Delta` against the receiving session's viewport
(:meth:`~repro.window.viewport.Viewport.contains` for single cells,
:meth:`~repro.window.viewport.Viewport.overlaps` for region re-renders)
and counts what it suppressed.

Three delta shapes cover the workbook's change vocabulary:

* ``cell`` — one cell's new value (a direct edit, a formula recompute, an
  error render);
* ``region`` — a display region re-rendered (DBTABLE window refresh,
  DBSQL re-query); the delta carries the region's extent rather than
  every cell, so a 10k-row refresh is one message;
* ``shift`` — a structural edit (rows/columns inserted or deleted at
  ``at`` on ``axis``); one compact message describes the whole half-space
  translation, matching the storage layer's key-space splice — a million
  shifted rows is *one* delta, never a million cell deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.core.address import RangeAddress
from repro.server.session import Session, SessionManager

__all__ = ["Delta", "Broadcaster"]


@dataclass
class Delta:
    """One visible change, stamped with the service version that made it."""

    kind: str            # "cell" | "region" | "shift"
    sheet: str
    version: int
    origin: Optional[int] = None     # session id that caused it (None: system)
    # cell deltas
    row: Optional[int] = None
    col: Optional[int] = None
    value: Any = None
    # region deltas
    region_id: Optional[int] = None
    area: Optional[RangeAddress] = None
    description: Optional[str] = None
    # shift deltas (structural edits): positions >= `at` on `axis` moved by
    # `count` (negative: a delete; the slice [at, at-count) vanished)
    axis: Optional[str] = None       # "row" | "col"
    at: Optional[int] = None
    count: Optional[int] = None

    def visible_to(self, session: Session) -> bool:
        viewport = session.viewport
        if self.kind == "cell":
            assert self.row is not None and self.col is not None
            return viewport.contains_key((self.sheet, self.row, self.col))
        if self.kind == "shift":
            if viewport.sheet != self.sheet:
                return False
            assert self.axis is not None and self.at is not None
            # Visible iff the shifted half-space reaches into the pane.
            edge = viewport.bottom if self.axis == "row" else viewport.right
            return edge >= self.at
        if self.area is None:
            return False
        return viewport.overlaps(self.area, sheet=self.sheet)


class Broadcaster:
    """Fans deltas out to the sessions whose viewports cover them."""

    def __init__(self, sessions: SessionManager):
        self.sessions = sessions
        self.published = 0
        self.delivered = 0
        self.suppressed = 0

    def publish(
        self,
        deltas: List[Delta],
        origin: Optional[int] = None,
        include_origin: bool = False,
    ) -> int:
        """Deliver each delta to every covering session; returns the number
        of (session, delta) deliveries.  The originating session already
        holds the result of its own apply, so it is skipped by default."""
        if not deltas:
            return 0
        self.published += len(deltas)
        deliveries = 0
        for session in self.sessions.sessions():
            if session.session_id == origin and not include_origin:
                continue
            for delta in deltas:
                if delta.visible_to(session):
                    session.deliver(delta)
                    deliveries += 1
                else:
                    self.suppressed += 1
        self.delivered += deliveries
        return deliveries
