"""Append-only JSONL write-ahead log of workbook operations.

The single-user demo path (:mod:`repro.core.persist`) rewrites the whole
workbook as one JSON blob on every save — O(workbook) bytes per edit.  The
server instead logs each *operation* (cell edit, SQL statement, region
bind, structural edit, physical-layout transition — ``layout_set`` /
``layout_step``) as one JSONL record and makes it durable with a batched
``fsync``; a full dump only happens at snapshot/compaction time
(:mod:`repro.server.snapshot`).

Record format (one JSON object per line)::

    {"crc": <crc32>, "rec": {"lsn": <n>, "op": {"type": ..., ...}}}

``crc`` is the CRC-32 of the canonical JSON encoding of ``rec``
(sorted keys, no whitespace), so any torn or bit-flipped record is
detectable.  LSNs are dense and start at 1, so a gap is corruption.

Crash tolerance: a crash mid-append leaves a *torn tail* — a final line
without a newline, or a final line whose checksum does not verify.
:func:`read_wal` stops at the last intact record in that case; a damaged
record with more data *after* it is real corruption and raises
:class:`~repro.errors.WALError`.  :class:`WriteAheadLog` repairs a torn
tail on open (truncates it) before appending new records.

Transactions appear in the log as marker records (``txn_begin`` /
``txn_commit``) written by the service's transaction hook; a rollback
*physically discards* the un-committed records by truncating back to the
:meth:`WriteAheadLog.mark` taken at begin.  :func:`committed_ops`
implements the replay rule: operations inside a begin..commit bracket
apply only when the commit marker made it to disk; everything outside a
bracket is autocommitted.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from repro.analysis.sanitizer import NULL_SANITIZER
from repro.core.persist import _decode_value, _encode_value
from repro.errors import WALError

__all__ = [
    "WalRecord",
    "WalMark",
    "WalStats",
    "WriteAheadLog",
    "read_wal",
    "committed_ops",
]

#: Marker op types (written by the transaction hook, skipped on replay).
TXN_MARKERS = ("txn_begin", "txn_commit", "txn_rollback")


def _encode_tree(value: Any) -> Any:
    """Deep-encode an op payload to JSON-native values (dates tagged)."""
    if isinstance(value, dict):
        return {key: _encode_tree(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_tree(item) for item in value]
    return _encode_value(value)


def _decode_tree(value: Any) -> Any:
    if isinstance(value, dict):
        if "$date" in value or "$datetime" in value:
            return _decode_value(value)
        return {key: _decode_tree(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_tree(item) for item in value]
    return value


def _canonical(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass
class WalRecord:
    """One intact log record plus its byte extent in the file."""

    lsn: int
    op: Dict[str, Any]
    offset: int      # byte offset of the record's first byte
    end_offset: int  # byte offset just past the trailing newline


@dataclass(frozen=True)
class WalMark:
    """A resumable position: byte offset + the LSN already consumed there.

    Taken at transaction begin so a rollback can discard everything the
    transaction appended (``truncate_to``)."""

    offset: int
    last_lsn: int


@dataclass
class WalStats:
    appends: int = 0
    syncs: int = 0
    truncations: int = 0
    bytes_written: int = 0

    def reset(self) -> None:
        self.appends = 0
        self.syncs = 0
        self.truncations = 0
        self.bytes_written = 0


def read_wal(path: str) -> Tuple[List[WalRecord], int, int]:
    """Read every intact record; returns ``(records, intact_end, file_size)``.

    ``intact_end`` is the byte offset of the end of the last intact record
    — the truncation point a repair should use.  Tolerates a torn tail;
    raises :class:`WALError` on interior corruption or an LSN gap."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, 0
    records: List[WalRecord] = []
    position = 0
    previous_lsn = 0
    size = len(data)
    while position < size:
        newline = data.find(b"\n", position)
        if newline == -1:
            break  # torn tail: partial final line with no terminator
        line = data[position:newline]
        record = _parse_line(line, previous_lsn)
        if record is None:
            if newline == size - 1:
                break  # damaged final line: treat as torn tail
            raise WALError(
                f"corrupt WAL record at byte {position} of {path} "
                "(damaged record followed by more data)"
            )
        lsn, op = record
        records.append(WalRecord(lsn, op, position, newline + 1))
        previous_lsn = lsn
        position = newline + 1
    return records, position, size


def _parse_line(line: bytes, previous_lsn: int) -> Optional[Tuple[int, Dict[str, Any]]]:
    """(lsn, op) if the line is an intact next record, else None."""
    try:
        envelope = json.loads(line)
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(envelope, dict) or "rec" not in envelope or "crc" not in envelope:
        return None
    rec = envelope["rec"]
    if zlib.crc32(_canonical(rec)) != envelope["crc"]:
        return None
    lsn = rec.get("lsn")
    if lsn != previous_lsn + 1:
        return None
    op = _decode_tree(rec.get("op"))
    if not isinstance(op, dict) or "type" not in op:
        return None
    return lsn, op


def committed_ops(records: List[WalRecord]) -> List[Dict[str, Any]]:
    """The durable operation sequence: autocommitted ops, plus the bodies
    of begin..commit brackets.  An open bracket at the end of the log (a
    crash before commit) is discarded — no partial batch is replayed."""
    out: List[Dict[str, Any]] = []
    pending: Optional[List[Dict[str, Any]]] = None
    for record in records:
        kind = record.op.get("type")
        if kind == "txn_begin":
            pending = []
        elif kind == "txn_commit":
            if pending is not None:
                out.extend(pending)
            pending = None
        elif kind == "txn_rollback":
            pending = None
        elif pending is not None:
            pending.append(record.op)
        else:
            out.append(record.op)
    return out


class WriteAheadLog:
    """Appendable, checksummed, crash-tolerant operation log.

    ``sync_every`` batches fsyncs: every Nth append pays the fsync (plus
    any append with ``sync=True``, plus :meth:`sync` / :meth:`close`).
    ``fsync=False`` turns the physical fsync off (fast mode for tests and
    benchmarks) while keeping the flush-to-OS write ordering."""

    #: Runtime invariant checks; the owning service swaps in the
    #: database's Sanitizer when sanitize mode is on.
    sanitizer = NULL_SANITIZER

    def __init__(
        self,
        path: str,
        sync_every: int = 32,
        fsync: bool = True,
        preread: Optional[Tuple[List[WalRecord], int, int]] = None,
    ):
        self.path = path
        self.sync_every = max(1, sync_every)
        self.fsync = fsync
        self.stats = WalStats()
        # Open + lock before reading: the log is single-writer, and a
        # second process appending its own LSN sequence would corrupt the
        # shared history (flock auto-releases if this process dies).
        # Unbuffered: every append reaches the OS page cache immediately,
        # so a process crash loses nothing — only the batched *fsync*
        # window is exposed to power loss.
        self._file = open(path, "ab", buffering=0)
        if fcntl is not None:
            try:
                fcntl.flock(self._file.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                self._file.close()
                raise WALError(
                    f"write-ahead log {path} is locked by another process"
                ) from None
        records, intact_end, size = preread if preread is not None else read_wal(path)
        # Repair 1: drop the torn tail left by a crash mid-append.
        truncate_at = intact_end if intact_end < size else None
        # Repair 2: drop a dangling open transaction bracket.  Its records
        # are never replayed (no commit marker made it to disk), and new
        # appends must not land "inside" the dead bracket where a future
        # recovery would discard them too.
        open_begin: Optional[WalRecord] = None
        for record in records:
            kind = record.op.get("type")
            if kind == "txn_begin":
                open_begin = record
            elif kind in ("txn_commit", "txn_rollback"):
                open_begin = None
        if open_begin is not None:
            records = [r for r in records if r.offset < open_begin.offset]
            truncate_at = open_begin.offset
        #: Bytes physically discarded by open-time repair (torn tail and/or
        #: dangling transaction bracket); 0 on a clean open.  Surfaced so
        #: recovery can report *that* a repair happened and how big it was.
        self.repaired_bytes = 0
        if truncate_at is not None:
            self.repaired_bytes = size - truncate_at
            os.ftruncate(self._file.fileno(), truncate_at)
            intact_end = truncate_at
        self._records_on_open = len(records)
        self._last_lsn = records[-1].lsn if records else 0
        self._offset = intact_end
        self._unsynced = 0

    # -- append path --------------------------------------------------------

    def append(self, op: Dict[str, Any], sync: Optional[bool] = None) -> WalRecord:
        """Durably (modulo batching) log one operation; returns the record."""
        if self._file.closed:
            raise WALError("write-ahead log is closed")
        lsn = self._last_lsn + 1
        if self.sanitizer.enabled:
            # Offset drift means the tracked end position and the physical
            # file disagree — the record about to be written would tear.
            self.sanitizer.check_wal_append(
                lsn, self._offset, os.fstat(self._file.fileno()).st_size
            )
        rec = {"lsn": lsn, "op": _encode_tree(op)}
        line = (
            json.dumps({"crc": zlib.crc32(_canonical(rec)), "rec": rec},
                       sort_keys=True, separators=(",", ":"))
            + "\n"
        ).encode("utf-8")
        offset = self._offset
        self._file.write(line)
        self._offset += len(line)
        self._last_lsn = lsn
        self._unsynced += 1
        self.stats.appends += 1
        self.stats.bytes_written += len(line)
        if sync or (sync is None and self._unsynced >= self.sync_every):
            self.sync()
        return WalRecord(lsn, op, offset, self._offset)

    def append_many(
        self, ops: List[Dict[str, Any]], sync: Optional[bool] = None
    ) -> List[WalRecord]:
        """Append a batch of operations in order; returns their records.

        The handoff path for background maintenance: layout transitions
        observed off the apply thread are queued and flushed here in one
        call, so their relative order in the log — which replay re-applies
        verbatim — matches the order the transitions were observed in.
        ``sync`` applies once, after the last record (a mid-batch crash
        loses a suffix, never a middle record)."""
        records = [self.append(op, sync=False) for op in ops]
        if sync or (sync is None and self._unsynced >= self.sync_every):
            self.sync()
        return records

    def sync(self) -> None:
        """Flush buffered records and (if enabled) fsync to disk."""
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        if self._unsynced:
            self.stats.syncs += 1
        self._unsynced = 0

    # -- transaction support -------------------------------------------------

    def mark(self) -> WalMark:
        """The current end position, for a later :meth:`truncate_to`."""
        return WalMark(self._offset, self._last_lsn)

    def truncate_to(self, mark: WalMark) -> int:
        """Discard every record appended after ``mark``; returns bytes cut.

        This is the rollback path: the discarded records were never
        covered by a commit marker, so dropping them keeps the log equal
        to the committed history."""
        if mark.offset > self._offset:
            raise WALError("cannot truncate forward")
        removed = self._offset - mark.offset
        if removed:
            self._file.flush()
            os.ftruncate(self._file.fileno(), mark.offset)
            # Records appended before the mark may still be un-fsynced;
            # make them durable now rather than widening the batch window.
            if self.fsync:
                os.fsync(self._file.fileno())
            self._offset = mark.offset
            self._last_lsn = mark.last_lsn
            self._unsynced = 0
            self.stats.truncations += 1
        return removed

    # -- state ----------------------------------------------------------------

    @property
    def last_lsn(self) -> int:
        return self._last_lsn

    @property
    def end_offset(self) -> int:
        return self._offset

    def records(self) -> List[WalRecord]:
        """Re-read the intact records currently on disk."""
        if not self._file.closed:
            self._file.flush()
        records, _, _ = read_wal(self.path)
        return records

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
