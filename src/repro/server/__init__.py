"""Durable operation log + multi-session collaboration server.

The seed's persistence story was the single-user demo path: rewrite the
whole workbook as one JSON blob per save, one writer, no sessions.  This
package turns the in-process workbook into a durable multi-client
service:

==============  ============================================================
module          role
==============  ============================================================
``wal``         append-only JSONL write-ahead log (checksums, batched
                fsync, torn-tail tolerance, txn markers)
``snapshot``    periodic compaction: persist-format snapshot + WAL offset,
                so recovery = snapshot + committed suffix replay
``session``     N client sessions over one workbook: per-session viewports
                and optimistic version horizons
``broadcast``   viewport-scoped delta subscriptions (a session only hears
                about changes it can see)
``service``     the apply pipeline: validate → WAL append → apply →
                visible-first recalc → broadcast → compact
==============  ============================================================

Quick start::

    from repro.server import WorkbookService

    svc = WorkbookService("/tmp/book")          # recovers if data exists
    alice = svc.connect("alice")
    svc.execute(alice.session_id, "CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
    svc.set_cell(alice.session_id, "Sheet1", "A1", 42)
    svc.close()

    svc = WorkbookService("/tmp/book")          # crash-safe: same state
    assert svc.workbook.get("Sheet1", "A1") == 42
"""

from repro.server.broadcast import Broadcaster, Delta
from repro.server.service import (
    ApplyResult,
    RecoveryResult,
    WorkbookService,
    apply_op,
    recover_state,
    validate_op,
)
from repro.server.session import Session, SessionManager
from repro.server.snapshot import SnapshotStore
from repro.server.wal import (
    WalMark,
    WalRecord,
    WalStats,
    WriteAheadLog,
    committed_ops,
    read_wal,
)

__all__ = [
    "WorkbookService",
    "ApplyResult",
    "RecoveryResult",
    "apply_op",
    "validate_op",
    "recover_state",
    "Session",
    "SessionManager",
    "Broadcaster",
    "Delta",
    "SnapshotStore",
    "WriteAheadLog",
    "WalRecord",
    "WalMark",
    "WalStats",
    "read_wal",
    "committed_ops",
]
