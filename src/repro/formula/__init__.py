"""The spreadsheet formula language.

"Spreadsheets support value-at-a-time formulae to allow derived computation"
(paper §1).  This package implements an Excel-style formula language — the
front-end half of DataSpread's computation model:

* :mod:`repro.formula.lexer` / :mod:`repro.formula.parser` — ``=SUM(A1:B10)``
  style syntax, cell/range references with ``$`` absolute flags, sheet
  qualifiers, comparison/concat/arithmetic/exponent operators,
* :mod:`repro.formula.functions` — the built-in function library
  (SUM, AVERAGE, IF, VLOOKUP, …),
* :mod:`repro.formula.evaluator` — evaluation against a cell-resolution
  context, with spreadsheet error codes (#VALUE!, #DIV/0!, #REF!, …),
* :mod:`repro.formula.dependency` — precedent extraction for the compute
  engine's dependency graph,
* reference shifting for copy/paste relative addressing (paper §2.2).

``DBSQL(...)`` and ``DBTABLE(...)`` parse as ordinary function calls; their
evaluation is delegated to the workbook layer (:mod:`repro.core`), which
owns the database connection.
"""

from repro.formula.parser import parse_formula
from repro.formula.evaluator import evaluate_formula, EvalContext, RangeValues
from repro.formula.dependency import extract_dependencies, shift_formula

__all__ = [
    "parse_formula",
    "evaluate_formula",
    "EvalContext",
    "RangeValues",
    "extract_dependencies",
    "shift_formula",
]
