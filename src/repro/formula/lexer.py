"""Formula tokenizer.

Recognises cell references (including ``$`` absolute markers and
``Sheet!`` qualifiers) directly in the lexer so the parser never has to
reinterpret identifiers: ``A1`` is a CELL token, ``A1:B3`` lexes as
CELL ``:`` CELL, ``SUM`` followed by ``(`` is a plain IDENT.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import FormulaSyntaxError

__all__ = ["FormulaToken", "tokenize_formula"]

_CELL_RE = re.compile(r"\$?[A-Za-z]{1,3}\$?[0-9]+")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.]*")
_NUMBER_RE = re.compile(r"(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?")
_TWO_CHAR = ("<=", ">=", "<>")
_ONE_CHAR = "=<>&+-*/^%(),:!"


@dataclass(frozen=True)
class FormulaToken:
    kind: str  # NUMBER | STRING | BOOL | CELL | IDENT | OP | EOF
    text: str
    position: int


def tokenize_formula(source: str) -> List[FormulaToken]:
    tokens: List[FormulaToken] = []
    index = 0
    length = len(source)
    while index < length:
        ch = source[index]
        if ch.isspace():
            index += 1
            continue
        if ch == '"':
            start = index
            index += 1
            pieces: List[str] = []
            while True:
                if index >= length:
                    raise FormulaSyntaxError("unterminated string", start)
                if source[index] == '"':
                    if index + 1 < length and source[index + 1] == '"':
                        pieces.append('"')
                        index += 2
                        continue
                    index += 1
                    break
                pieces.append(source[index])
                index += 1
            tokens.append(FormulaToken("STRING", "".join(pieces), start))
            continue
        # Cell reference (tried before numbers/idents; requires the trailing
        # character to not extend the identifier, so SUM1(...) stays IDENT).
        cell_match = _CELL_RE.match(source, index)
        if cell_match:
            end = cell_match.end()
            if end >= length or not (source[end].isalnum() or source[end] in "_(."):
                tokens.append(FormulaToken("CELL", cell_match.group(), index))
                index = end
                continue
        number_match = _NUMBER_RE.match(source, index)
        if number_match and not ch.isalpha():
            tokens.append(FormulaToken("NUMBER", number_match.group(), index))
            index = number_match.end()
            continue
        ident_match = _IDENT_RE.match(source, index)
        if ident_match:
            text = ident_match.group()
            upper = text.upper()
            if upper in ("TRUE", "FALSE"):
                tokens.append(FormulaToken("BOOL", upper, index))
            else:
                tokens.append(FormulaToken("IDENT", text, index))
            index = ident_match.end()
            continue
        two = source[index : index + 2]
        if two in _TWO_CHAR:
            tokens.append(FormulaToken("OP", two, index))
            index += 2
            continue
        if ch in _ONE_CHAR:
            tokens.append(FormulaToken("OP", ch, index))
            index += 1
            continue
        raise FormulaSyntaxError(f"unexpected character {ch!r} in formula", index)
    tokens.append(FormulaToken("EOF", "", length))
    return tokens
