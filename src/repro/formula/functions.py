"""Built-in spreadsheet functions.

Functions receive *evaluated* arguments: scalars, or :class:`RangeValues`
objects for range references.  Aggregating functions flatten ranges; lookup
functions use the 2-D grid.  Spreadsheet error semantics are expressed by
raising :class:`~repro.errors.FormulaEvalError` with the matching error
code.

Coercion follows Excel's conventions: blanks count as 0 in arithmetic
aggregates but are skipped by SUM/AVERAGE/COUNT over ranges; text that looks
numeric converts in arithmetic contexts; ``TRUE``/``FALSE`` are 1/0.
"""

from __future__ import annotations

import math
import statistics
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import FormulaEvalError

__all__ = ["FUNCTIONS", "RangeValues", "to_number", "to_text", "compare"]


class RangeValues:
    """Evaluated contents of a range reference: a dense 2-D grid."""

    def __init__(self, grid: List[List[Any]]):
        self.grid = grid

    @property
    def n_rows(self) -> int:
        return len(self.grid)

    @property
    def n_cols(self) -> int:
        return len(self.grid[0]) if self.grid else 0

    def flat(self) -> Iterable[Any]:
        for row in self.grid:
            yield from row

    def column(self, index: int) -> List[Any]:
        return [row[index] for row in self.grid]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RangeValues({self.n_rows}x{self.n_cols})"


def to_number(value: Any) -> float:
    """Numeric coercion with Excel semantics (#VALUE! on failure)."""
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        text = value.strip()
        if text == "":
            return 0
        try:
            number = float(text)
        except ValueError:
            raise FormulaEvalError(f"cannot convert {value!r} to a number")
        return int(number) if number.is_integer() else number
    raise FormulaEvalError(f"cannot convert {value!r} to a number")


def to_text(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def to_bool(value: Any) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        upper = value.strip().upper()
        if upper == "TRUE":
            return True
        if upper == "FALSE" or upper == "":
            return False
        raise FormulaEvalError(f"cannot convert {value!r} to a boolean")
    raise FormulaEvalError(f"cannot convert {value!r} to a boolean")


def compare(left: Any, right: Any) -> int:
    """Excel comparison: numbers < text < booleans; text case-insensitive."""

    def rank(value: Any) -> int:
        if isinstance(value, bool):
            return 2
        if value is None or isinstance(value, (int, float)):
            return 0
        return 1

    left_rank, right_rank = rank(left), rank(right)
    if left_rank != right_rank:
        return -1 if left_rank < right_rank else 1
    if left_rank == 0:
        left_n = 0 if left is None else left
        right_n = 0 if right is None else right
        return (left_n > right_n) - (left_n < right_n)
    if left_rank == 1:
        left_s, right_s = str(left).lower(), str(right).lower()
        return (left_s > right_s) - (left_s < right_s)
    return (bool(left) > bool(right)) - (bool(left) < bool(right))


def _numbers(args: Iterable[Any], skip_blank_text: bool = True) -> Iterable[float]:
    """Numeric values from scalars and ranges, Excel-aggregate style: range
    cells that are blank or non-numeric text are skipped; direct scalar
    arguments are coerced strictly."""
    for argument in args:
        if isinstance(argument, RangeValues):
            for value in argument.flat():
                if isinstance(value, bool):
                    continue  # Excel ignores booleans in range aggregates
                if isinstance(value, (int, float)):
                    yield value
        elif argument is not None:
            yield to_number(argument)


def _all_values(args: Iterable[Any]) -> Iterable[Any]:
    for argument in args:
        if isinstance(argument, RangeValues):
            yield from argument.flat()
        else:
            yield argument


def _require(condition: bool, message: str, code: str = "#VALUE!") -> None:
    if not condition:
        raise FormulaEvalError(message, code)


# ---------------------------------------------------------------------------
# Math & aggregation
# ---------------------------------------------------------------------------

def _fn_sum(*args: Any) -> float:
    return sum(_numbers(args)) or 0


def _fn_product(*args: Any) -> float:
    result = 1.0
    seen = False
    for value in _numbers(args):
        result *= value
        seen = True
    return result if seen else 0


def _fn_min(*args: Any) -> float:
    values = list(_numbers(args))
    return min(values) if values else 0


def _fn_max(*args: Any) -> float:
    values = list(_numbers(args))
    return max(values) if values else 0


def _fn_average(*args: Any) -> float:
    values = list(_numbers(args))
    _require(bool(values), "AVERAGE of no values", "#DIV/0!")
    return sum(values) / len(values)


def _fn_median(*args: Any) -> float:
    values = list(_numbers(args))
    _require(bool(values), "MEDIAN of no values", "#DIV/0!")
    return statistics.median(values)


def _fn_stdev(*args: Any) -> float:
    values = list(_numbers(args))
    _require(len(values) >= 2, "STDEV needs at least two values", "#DIV/0!")
    return statistics.stdev(values)


def _fn_var(*args: Any) -> float:
    values = list(_numbers(args))
    _require(len(values) >= 2, "VAR needs at least two values", "#DIV/0!")
    return statistics.variance(values)


def _fn_count(*args: Any) -> int:
    return sum(
        1
        for value in _all_values(args)
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    )


def _fn_counta(*args: Any) -> int:
    return sum(1 for value in _all_values(args) if value is not None and value != "")


def _fn_countblank(*args: Any) -> int:
    return sum(1 for value in _all_values(args) if value is None or value == "")


def _fn_round(value: Any, digits: Any = 0) -> float:
    return round(to_number(value), int(to_number(digits)))


def _fn_int(value: Any) -> int:
    return math.floor(to_number(value))


def _fn_mod(value: Any, divisor: Any) -> float:
    d = to_number(divisor)
    _require(d != 0, "MOD by zero", "#DIV/0!")
    return to_number(value) % d


def _fn_sqrt(value: Any) -> float:
    number = to_number(value)
    _require(number >= 0, "SQRT of negative", "#VALUE!")
    return math.sqrt(number)


def _fn_large(values: Any, k: Any) -> float:
    _require(isinstance(values, RangeValues), "LARGE needs a range")
    ordered = sorted(_numbers([values]), reverse=True)
    index = int(to_number(k))
    _require(1 <= index <= len(ordered), "LARGE k out of range", "#N/A")
    return ordered[index - 1]


def _fn_small(values: Any, k: Any) -> float:
    _require(isinstance(values, RangeValues), "SMALL needs a range")
    ordered = sorted(_numbers([values]))
    index = int(to_number(k))
    _require(1 <= index <= len(ordered), "SMALL k out of range", "#N/A")
    return ordered[index - 1]


# ---------------------------------------------------------------------------
# Logic / type predicates
# ---------------------------------------------------------------------------

def _fn_and(*args: Any) -> bool:
    return all(to_bool(value) for value in _all_values(args))


def _fn_or(*args: Any) -> bool:
    return any(to_bool(value) for value in _all_values(args))


def _fn_xor(*args: Any) -> bool:
    return sum(1 for value in _all_values(args) if to_bool(value)) % 2 == 1


def _fn_not(value: Any) -> bool:
    return not to_bool(value)


def _fn_isblank(value: Any) -> bool:
    return value is None or value == ""


def _fn_isnumber(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _fn_istext(value: Any) -> bool:
    return isinstance(value, str)


# ---------------------------------------------------------------------------
# Text
# ---------------------------------------------------------------------------

def _fn_concatenate(*args: Any) -> str:
    return "".join(to_text(value) for value in _all_values(args))


def _fn_left(text: Any, count: Any = 1) -> str:
    return to_text(text)[: int(to_number(count))]


def _fn_right(text: Any, count: Any = 1) -> str:
    n = int(to_number(count))
    string = to_text(text)
    return string[-n:] if n else ""


def _fn_mid(text: Any, start: Any, count: Any) -> str:
    begin = int(to_number(start))
    _require(begin >= 1, "MID start must be >= 1")
    return to_text(text)[begin - 1 : begin - 1 + int(to_number(count))]


def _fn_find(needle: Any, haystack: Any, start: Any = 1) -> int:
    index = to_text(haystack).find(to_text(needle), int(to_number(start)) - 1)
    _require(index >= 0, "FIND: not found", "#VALUE!")
    return index + 1


def _fn_substitute(text: Any, old: Any, new: Any) -> str:
    return to_text(text).replace(to_text(old), to_text(new))


def _fn_rept(text: Any, count: Any) -> str:
    return to_text(text) * int(to_number(count))


def _fn_exact(left: Any, right: Any) -> bool:
    return to_text(left) == to_text(right)


def _fn_value(text: Any) -> float:
    return to_number(text)


# ---------------------------------------------------------------------------
# Lookup
# ---------------------------------------------------------------------------

def _fn_vlookup(needle: Any, table: Any, col_index: Any, approximate: Any = True) -> Any:
    _require(isinstance(table, RangeValues), "VLOOKUP needs a range", "#VALUE!")
    column = int(to_number(col_index))
    _require(1 <= column <= table.n_cols, "VLOOKUP column out of range", "#REF!")
    approx = to_bool(approximate)
    best_row: Optional[List[Any]] = None
    for row in table.grid:
        key = row[0]
        ordering = compare(key, needle)
        if ordering == 0:
            return row[column - 1]
        if approx and ordering < 0:
            best_row = row  # last key <= needle (assumes sorted first column)
    if approx and best_row is not None:
        return best_row[column - 1]
    raise FormulaEvalError("VLOOKUP: value not found", "#N/A")


def _fn_hlookup(needle: Any, table: Any, row_index: Any, approximate: Any = True) -> Any:
    _require(isinstance(table, RangeValues), "HLOOKUP needs a range", "#VALUE!")
    row_number = int(to_number(row_index))
    _require(1 <= row_number <= table.n_rows, "HLOOKUP row out of range", "#REF!")
    transposed = RangeValues([list(col) for col in zip(*table.grid)])
    return _fn_vlookup(needle, transposed, row_number, approximate)


def _fn_index(table: Any, row: Any, col: Any = 1) -> Any:
    _require(isinstance(table, RangeValues), "INDEX needs a range", "#VALUE!")
    row_number = int(to_number(row))
    col_number = int(to_number(col))
    _require(
        1 <= row_number <= table.n_rows and 1 <= col_number <= table.n_cols,
        "INDEX out of range",
        "#REF!",
    )
    return table.grid[row_number - 1][col_number - 1]


def _fn_match(needle: Any, values: Any, match_type: Any = 1) -> int:
    _require(isinstance(values, RangeValues), "MATCH needs a range", "#VALUE!")
    flat = list(values.flat())
    mode = int(to_number(match_type))
    if mode == 0:
        for index, value in enumerate(flat):
            if compare(value, needle) == 0:
                return index + 1
        raise FormulaEvalError("MATCH: not found", "#N/A")
    best = None
    for index, value in enumerate(flat):
        ordering = compare(value, needle)
        if mode > 0 and ordering <= 0:
            best = index + 1
        if mode < 0 and ordering >= 0:
            best = index + 1
    if best is None:
        raise FormulaEvalError("MATCH: not found", "#N/A")
    return best


def _fn_choose(index: Any, *options: Any) -> Any:
    position = int(to_number(index))
    _require(1 <= position <= len(options), "CHOOSE index out of range")
    return options[position - 1]


# ---------------------------------------------------------------------------
# Conditional aggregates
# ---------------------------------------------------------------------------

def _parse_criteria(criteria: Any) -> Callable[[Any], bool]:
    if isinstance(criteria, str):
        for op in ("<=", ">=", "<>", "<", ">", "="):
            if criteria.startswith(op):
                target_text = criteria[len(op) :]
                try:
                    target: Any = float(target_text)
                    if float(target).is_integer():
                        target = int(target)
                except ValueError:
                    target = target_text

                def predicate(value: Any, op: str = op, target: Any = target) -> bool:
                    if value is None:
                        return False
                    try:
                        ordering = compare(value, target)
                    except FormulaEvalError:
                        return False
                    return {
                        "=": ordering == 0,
                        "<>": ordering != 0,
                        "<": ordering < 0,
                        "<=": ordering <= 0,
                        ">": ordering > 0,
                        ">=": ordering >= 0,
                    }[op]

                return predicate
    return lambda value: value is not None and compare(value, criteria) == 0


def _fn_countif(values: Any, criteria: Any) -> int:
    _require(isinstance(values, RangeValues), "COUNTIF needs a range")
    predicate = _parse_criteria(criteria)
    return sum(1 for value in values.flat() if predicate(value))


def _fn_sumif(values: Any, criteria: Any, sum_values: Any = None) -> float:
    _require(isinstance(values, RangeValues), "SUMIF needs a range")
    predicate = _parse_criteria(criteria)
    source = sum_values if isinstance(sum_values, RangeValues) else values
    total = 0.0
    for test_value, add_value in zip(values.flat(), source.flat()):
        if predicate(test_value) and isinstance(add_value, (int, float)) and not isinstance(add_value, bool):
            total += add_value
    return total


def _fn_averageif(values: Any, criteria: Any, avg_values: Any = None) -> float:
    _require(isinstance(values, RangeValues), "AVERAGEIF needs a range")
    predicate = _parse_criteria(criteria)
    source = avg_values if isinstance(avg_values, RangeValues) else values
    selected = [
        add_value
        for test_value, add_value in zip(values.flat(), source.flat())
        if predicate(test_value)
        and isinstance(add_value, (int, float))
        and not isinstance(add_value, bool)
    ]
    _require(bool(selected), "AVERAGEIF matched nothing", "#DIV/0!")
    return sum(selected) / len(selected)


FUNCTIONS: Dict[str, Callable] = {
    "SUM": _fn_sum,
    "PRODUCT": _fn_product,
    "MIN": _fn_min,
    "MAX": _fn_max,
    "AVERAGE": _fn_average,
    "MEDIAN": _fn_median,
    "STDEV": _fn_stdev,
    "VAR": _fn_var,
    "COUNT": _fn_count,
    "COUNTA": _fn_counta,
    "COUNTBLANK": _fn_countblank,
    "ABS": lambda value: abs(to_number(value)),
    "ROUND": _fn_round,
    "INT": _fn_int,
    "MOD": _fn_mod,
    "SQRT": _fn_sqrt,
    "POWER": lambda base, exponent: to_number(base) ** to_number(exponent),
    "EXP": lambda value: math.exp(to_number(value)),
    "LN": lambda value: math.log(to_number(value)),
    "LOG": lambda value, base=10: math.log(to_number(value), to_number(base)),
    "FLOOR": lambda value, significance=1: math.floor(
        to_number(value) / to_number(significance)
    )
    * to_number(significance),
    "CEILING": lambda value, significance=1: math.ceil(
        to_number(value) / to_number(significance)
    )
    * to_number(significance),
    "SIGN": lambda value: (to_number(value) > 0) - (to_number(value) < 0),
    "PI": lambda: math.pi,
    "LARGE": _fn_large,
    "SMALL": _fn_small,
    "AND": _fn_and,
    "OR": _fn_or,
    "XOR": _fn_xor,
    "NOT": _fn_not,
    "ISBLANK": _fn_isblank,
    "ISNUMBER": _fn_isnumber,
    "ISTEXT": _fn_istext,
    "CONCATENATE": _fn_concatenate,
    "CONCAT": _fn_concatenate,
    "LEN": lambda text: len(to_text(text)),
    "LEFT": _fn_left,
    "RIGHT": _fn_right,
    "MID": _fn_mid,
    "FIND": _fn_find,
    "SUBSTITUTE": _fn_substitute,
    "REPT": _fn_rept,
    "EXACT": _fn_exact,
    "VALUE": _fn_value,
    "UPPER": lambda text: to_text(text).upper(),
    "LOWER": lambda text: to_text(text).lower(),
    "TRIM": lambda text: to_text(text).strip(),
    "VLOOKUP": _fn_vlookup,
    "HLOOKUP": _fn_hlookup,
    "INDEX": _fn_index,
    "MATCH": _fn_match,
    "CHOOSE": _fn_choose,
    "COUNTIF": _fn_countif,
    "SUMIF": _fn_sumif,
    "AVERAGEIF": _fn_averageif,
}
