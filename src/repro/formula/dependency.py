"""Precedent extraction and relative-reference shifting.

The compute engine needs to know, for every formula, which cells and ranges
it reads (its *precedents*) so it can rebuild the dependency graph on edit.
``DBSQL`` formulas additionally reference database tables and embedded
``RANGEVALUE``/``RANGETABLE`` spreadsheet references — those are extracted
by the DataSpread layer (:mod:`repro.core.dbsql`), not here.

``shift_formula`` implements copy/paste semantics (paper §2.2: positional
referencing "enables us to copy expressions across cells while still
maintaining the relative references"): relative references move by the
paste delta, absolute (``$``) ones do not; references pushed off the sheet
become ``#REF!`` errors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, List, Optional, Set, Tuple, Union

from repro.core.address import CellAddress, RangeAddress
from repro.errors import AddressError, FormulaError
from repro.formula.nodes import (
    Binary,
    Call,
    CellRef,
    FormulaNode,
    RangeRef,
    Unary,
    walk,
)
from repro.formula.parser import parse_formula

__all__ = ["Precedents", "extract_dependencies", "shift_formula", "shift_node"]


@dataclass(frozen=True)
class Precedents:
    """What a formula reads."""

    cells: FrozenSet[CellAddress]
    ranges: FrozenSet[RangeAddress]

    def all_cells(self, clamp: int = 1_000_000) -> Set[CellAddress]:
        """Expand ranges to member cells (bounded; huge ranges raise)."""
        out: Set[CellAddress] = set(self.cells)
        for reference in self.ranges:
            if reference.size > clamp:
                raise FormulaError(
                    f"range {reference.to_a1()} too large to expand"
                )
            out.update(reference.cells())
        return out

    def is_empty(self) -> bool:
        return not self.cells and not self.ranges


def extract_dependencies(
    formula: Union[str, FormulaNode], base_sheet: Optional[str] = None
) -> Precedents:
    """Collect cell and range precedents; unqualified references are
    attributed to ``base_sheet``."""
    node = parse_formula(formula) if isinstance(formula, str) else formula
    cells: Set[CellAddress] = set()
    ranges: Set[RangeAddress] = set()
    for item in walk(node):
        if isinstance(item, CellRef):
            address = item.address
            if address.sheet is None and base_sheet is not None:
                address = address.with_sheet(base_sheet)
            cells.add(address)
        elif isinstance(item, RangeRef):
            reference = item.range
            if reference.sheet is None and base_sheet is not None:
                reference = RangeAddress(
                    reference.start.with_sheet(base_sheet),
                    reference.end.with_sheet(base_sheet),
                )
            ranges.add(reference)
    return Precedents(frozenset(cells), frozenset(ranges))


def shift_node(node: FormulaNode, d_row: int, d_col: int) -> FormulaNode:
    """Return a copy of the AST with relative references shifted."""
    if isinstance(node, CellRef):
        try:
            return CellRef(node.address.offset(d_row, d_col))
        except AddressError:
            raise FormulaError(
                f"reference {node.address.to_a1()} shifted off the sheet"
            ) from None
    if isinstance(node, RangeRef):
        try:
            return RangeRef(
                RangeAddress(
                    node.range.start.offset(d_row, d_col),
                    node.range.end.offset(d_row, d_col),
                )
            )
        except AddressError:
            raise FormulaError(
                f"range {node.range.to_a1()} shifted off the sheet"
            ) from None
    if isinstance(node, Binary):
        return Binary(
            node.op,
            shift_node(node.left, d_row, d_col),
            shift_node(node.right, d_row, d_col),
        )
    if isinstance(node, Unary):
        return Unary(node.op, shift_node(node.operand, d_row, d_col))
    if isinstance(node, Call):
        return Call(
            node.name,
            tuple(shift_node(argument, d_row, d_col) for argument in node.args),
        )
    return node  # literals


def shift_formula(source: str, d_row: int, d_col: int) -> str:
    """Shift a formula's relative references (copy/paste); returns new
    formula text without the leading ``=``."""
    node = parse_formula(source)
    return shift_node(node, d_row, d_col).to_text()


class ReferenceDeleted(FormulaError):
    """A structural edit removed a row/column a formula referenced; the
    owning cell must display ``#REF!``."""


def _adjust_coord(coord: int, at: int, count: int) -> int:
    """New coordinate after inserting (count>0) or deleting (count<0)
    ``abs(count)`` slots at ``at``.  Raises ReferenceDeleted when the
    coordinate itself is removed."""
    if count > 0:
        return coord + count if coord >= at else coord
    removed = -count
    if coord >= at + removed:
        return coord - removed
    if coord >= at:
        raise ReferenceDeleted(f"referenced slot {coord} deleted")
    return coord


def adjust_node_for_structural_edit(
    node: FormulaNode,
    axis: str,
    at: int,
    count: int,
    sheet: str,
    base_sheet: str,
) -> FormulaNode:
    """Rewrite references after inserting/deleting rows (``axis='row'``) or
    columns (``axis='col'``) on ``sheet``.

    Unlike copy/paste shifting, *absolute* references move too — the data
    they pointed at moved.  Ranges clamp: a range losing interior rows
    shrinks; a range losing *all* its rows raises ReferenceDeleted.
    Unqualified references belong to ``base_sheet`` (the formula's sheet).
    """
    if axis not in ("row", "col"):
        raise FormulaError(f"unknown axis {axis!r}")

    def owner(address: CellAddress) -> str:
        return address.sheet or base_sheet

    def move_cell(address: CellAddress) -> CellAddress:
        if owner(address) != sheet:
            return address
        if axis == "row":
            return replace(address, row=_adjust_coord(address.row, at, count))
        return replace(address, col=_adjust_coord(address.col, at, count))

    def move_range(reference: RangeAddress) -> RangeAddress:
        if owner(reference.start) != sheet:
            return reference
        start, end = reference.start, reference.end
        if axis == "row":
            lo, hi = start.row, end.row
        else:
            lo, hi = start.col, end.col
        if count < 0:
            removed = -count
            new_lo, new_hi = lo, hi
            if lo >= at:
                new_lo = max(lo - removed, at) if lo < at + removed else lo - removed
            if hi >= at:
                if hi < at + removed:
                    new_hi = at - 1
                else:
                    new_hi = hi - removed
            if new_hi < new_lo or new_hi < 0:
                raise ReferenceDeleted(f"range {reference.to_a1()} fully deleted")
            lo, hi = new_lo, new_hi
        else:
            if lo >= at:
                lo += count
            if hi >= at:
                hi += count
        if axis == "row":
            return RangeAddress(replace(start, row=lo), replace(end, row=hi))
        return RangeAddress(replace(start, col=lo), replace(end, col=hi))

    if isinstance(node, CellRef):
        return CellRef(move_cell(node.address))
    if isinstance(node, RangeRef):
        return RangeRef(move_range(node.range))
    if isinstance(node, Binary):
        return Binary(
            node.op,
            adjust_node_for_structural_edit(node.left, axis, at, count, sheet, base_sheet),
            adjust_node_for_structural_edit(node.right, axis, at, count, sheet, base_sheet),
        )
    if isinstance(node, Unary):
        return Unary(
            node.op,
            adjust_node_for_structural_edit(node.operand, axis, at, count, sheet, base_sheet),
        )
    if isinstance(node, Call):
        return Call(
            node.name,
            tuple(
                adjust_node_for_structural_edit(arg, axis, at, count, sheet, base_sheet)
                for arg in node.args
            ),
        )
    return node


def adjust_formula_for_structural_edit(
    source: str, axis: str, at: int, count: int, sheet: str, base_sheet: str
) -> str:
    """Text-level convenience wrapper over
    :func:`adjust_node_for_structural_edit`."""
    node = parse_formula(source)
    return adjust_node_for_structural_edit(node, axis, at, count, sheet, base_sheet).to_text()
