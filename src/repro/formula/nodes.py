"""Formula AST nodes.

Every node can render itself back to formula text (``to_text``), which is
how relative-reference shifting reproduces a formula after copy/paste.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.core.address import CellAddress, RangeAddress

__all__ = [
    "FormulaNode",
    "Number",
    "Text",
    "Boolean",
    "CellRef",
    "RangeRef",
    "Binary",
    "Unary",
    "Call",
]


class FormulaNode:
    __slots__ = ()

    def to_text(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class Number(FormulaNode):
    value: float

    def to_text(self) -> str:
        if isinstance(self.value, int) or (
            isinstance(self.value, float) and self.value.is_integer()
        ):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class Text(FormulaNode):
    value: str

    def to_text(self) -> str:
        escaped = self.value.replace('"', '""')
        return f'"{escaped}"'


@dataclass(frozen=True)
class Boolean(FormulaNode):
    value: bool

    def to_text(self) -> str:
        return "TRUE" if self.value else "FALSE"


@dataclass(frozen=True)
class CellRef(FormulaNode):
    address: CellAddress

    def to_text(self) -> str:
        return self.address.to_a1()


@dataclass(frozen=True)
class RangeRef(FormulaNode):
    range: RangeAddress

    def to_text(self) -> str:
        return self.range.to_a1()


@dataclass(frozen=True)
class Binary(FormulaNode):
    op: str  # = <> < <= > >= & + - * / ^
    left: FormulaNode
    right: FormulaNode

    def to_text(self) -> str:
        return f"{self.left.to_text()}{self.op}{self.right.to_text()}"


@dataclass(frozen=True)
class Unary(FormulaNode):
    op: str  # - +
    operand: FormulaNode

    def to_text(self) -> str:
        return f"{self.op}{self.operand.to_text()}"


@dataclass(frozen=True)
class Call(FormulaNode):
    name: str  # upper-cased
    args: Tuple[FormulaNode, ...]

    def to_text(self) -> str:
        rendered = ",".join(argument.to_text() for argument in self.args)
        return f"{self.name}({rendered})"


def walk(node: FormulaNode):
    """Pre-order traversal."""
    yield node
    if isinstance(node, Binary):
        yield from walk(node.left)
        yield from walk(node.right)
    elif isinstance(node, Unary):
        yield from walk(node.operand)
    elif isinstance(node, Call):
        for argument in node.args:
            yield from walk(argument)
