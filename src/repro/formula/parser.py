"""Formula parser.

Excel-style precedence, loosest first::

    comparison   =  <>  <  <=  >  >=
    concat       &
    additive     +  -
    multiplic.   *  /
    exponent     ^          (right-associative)
    unary        -  +
    primary      literal | cell | range | Sheet!ref | NAME(args) | (expr)

``Sheet2!A1`` and ``Sheet2!A1:B3`` attach the sheet to the reference.
A leading ``=`` is accepted and ignored (callers usually strip it).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.address import CellAddress, RangeAddress
from repro.errors import FormulaSyntaxError
from repro.formula.lexer import FormulaToken, tokenize_formula
from repro.formula.nodes import (
    Binary,
    Boolean,
    Call,
    CellRef,
    FormulaNode,
    Number,
    RangeRef,
    Text,
    Unary,
)

__all__ = ["parse_formula"]


def parse_formula(source: str) -> FormulaNode:
    text = source.strip()
    if text.startswith("="):
        text = text[1:]
    if not text:
        raise FormulaSyntaxError("empty formula")
    parser = _FormulaParser(tokenize_formula(text))
    node = parser.expression()
    if not parser.at_end():
        raise FormulaSyntaxError(
            f"unexpected trailing input {parser.peek().text!r}", parser.peek().position
        )
    return node


class _FormulaParser:
    def __init__(self, tokens: List[FormulaToken]):
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead: int = 0) -> FormulaToken:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> FormulaToken:
        token = self._tokens[self._index]
        if token.kind != "EOF":
            self._index += 1
        return token

    def at_end(self) -> bool:
        return self.peek().kind == "EOF"

    def try_op(self, *texts: str) -> Optional[str]:
        token = self.peek()
        if token.kind == "OP" and token.text in texts:
            self.advance()
            return token.text
        return None

    def expect_op(self, text: str) -> None:
        if not self.try_op(text):
            raise FormulaSyntaxError(f"expected {text!r}", self.peek().position)

    # -- precedence levels -------------------------------------------------

    def expression(self) -> FormulaNode:
        return self.comparison()

    def comparison(self) -> FormulaNode:
        left = self.concat()
        while True:
            op = self.try_op("=", "<>", "<", "<=", ">", ">=")
            if op is None:
                return left
            left = Binary(op, left, self.concat())

    def concat(self) -> FormulaNode:
        left = self.additive()
        while self.try_op("&"):
            left = Binary("&", left, self.additive())
        return left

    def additive(self) -> FormulaNode:
        left = self.multiplicative()
        while True:
            op = self.try_op("+", "-")
            if op is None:
                return left
            left = Binary(op, left, self.multiplicative())

    def multiplicative(self) -> FormulaNode:
        left = self.exponent()
        while True:
            op = self.try_op("*", "/")
            if op is None:
                return left
            left = Binary(op, left, self.exponent())

    def exponent(self) -> FormulaNode:
        base = self.unary()
        if self.try_op("^"):
            return Binary("^", base, self.exponent())  # right-associative
        return base

    def unary(self) -> FormulaNode:
        op = self.try_op("-", "+")
        if op is not None:
            return Unary(op, self.unary())
        return self.primary()

    # -- primaries ---------------------------------------------------------

    def primary(self) -> FormulaNode:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            value = float(token.text)
            return Number(int(value) if value.is_integer() and "." not in token.text and "e" not in token.text.lower() else value)
        if token.kind == "STRING":
            self.advance()
            return Text(token.text)
        if token.kind == "BOOL":
            self.advance()
            return Boolean(token.text == "TRUE")
        if token.kind == "CELL":
            return self.reference(sheet=None)
        if token.kind == "IDENT":
            # Sheet qualifier or function call.
            if self.peek(1).kind == "OP" and self.peek(1).text == "!":
                sheet = self.advance().text
                self.advance()  # '!'
                if self.peek().kind != "CELL":
                    raise FormulaSyntaxError(
                        "expected cell reference after sheet qualifier",
                        self.peek().position,
                    )
                return self.reference(sheet=sheet)
            if self.peek(1).kind == "OP" and self.peek(1).text == "(":
                return self.call()
            raise FormulaSyntaxError(
                f"unknown name {token.text!r}", token.position
            )
        if token.kind == "OP" and token.text == "(":
            self.advance()
            inner = self.expression()
            self.expect_op(")")
            return inner
        raise FormulaSyntaxError(
            f"unexpected token {token.text!r}", token.position
        )

    def reference(self, sheet: Optional[str]) -> FormulaNode:
        first = self.advance().text
        start = CellAddress.parse(first)
        if sheet is not None:
            start = start.with_sheet(sheet)
        if self.peek().kind == "OP" and self.peek().text == ":" and self.peek(1).kind == "CELL":
            self.advance()
            second = self.advance().text
            end = CellAddress.parse(second)
            if sheet is not None:
                end = end.with_sheet(sheet)
            return RangeRef(RangeAddress(start, end))
        return CellRef(start)

    def call(self) -> FormulaNode:
        name = self.advance().text.upper()
        self.expect_op("(")
        args: List[FormulaNode] = []
        if not (self.peek().kind == "OP" and self.peek().text == ")"):
            args.append(self.expression())
            while self.try_op(","):
                args.append(self.expression())
        self.expect_op(")")
        return Call(name, tuple(args))
