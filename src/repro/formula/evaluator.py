"""Formula evaluation.

``evaluate_formula(source, context)`` parses (or accepts a pre-parsed node)
and computes the value.  The :class:`EvalContext` supplies cell/range
resolution and the extension hook for the DataSpread constructs: any call
whose name is not in the built-in library is forwarded to
``context.call_extension`` — this is how ``DBSQL(...)`` and ``DBTABLE(...)``
reach the workbook layer without the formula package depending on the
database.

Spreadsheet error semantics: failures raise
:class:`~repro.errors.FormulaEvalError` carrying the error literal
(#VALUE!, #DIV/0!, #REF!, #NAME?); the compute engine renders that literal
into the cell.  ``IF`` evaluates lazily (only the taken branch) and
``IFERROR`` catches evaluation errors — both need special forms.
"""

from __future__ import annotations

from typing import Any, List, Optional, Union

from repro.core.address import CellAddress, RangeAddress
from repro.errors import FormulaEvalError
from repro.formula.functions import FUNCTIONS, RangeValues, compare, to_bool, to_number, to_text
from repro.formula.nodes import (
    Binary,
    Boolean,
    Call,
    CellRef,
    FormulaNode,
    Number,
    RangeRef,
    Text,
    Unary,
)
from repro.formula.parser import parse_formula

__all__ = ["EvalContext", "evaluate_formula", "RangeValues"]


class EvalContext:
    """Resolution services the evaluator needs.

    Subclass (or duck-type) with:

    * ``cell_value(address)`` → scalar (None for blank),
    * ``range_values(range_address)`` → :class:`RangeValues`,
    * ``call_extension(name, evaluated_args)`` → scalar (DBSQL/DBTABLE and
      other host functions); raise ``FormulaEvalError('#NAME?')`` if
      unknown.
    """

    def cell_value(self, address: CellAddress) -> Any:
        raise FormulaEvalError(f"no cell resolver for {address.to_a1()}", "#REF!")

    def range_values(self, reference: RangeAddress) -> RangeValues:
        raise FormulaEvalError(f"no range resolver for {reference.to_a1()}", "#REF!")

    def call_extension(self, name: str, args: List[Any]) -> Any:
        raise FormulaEvalError(f"unknown function {name}", "#NAME?")


def evaluate_formula(
    formula: Union[str, FormulaNode], context: EvalContext
) -> Any:
    """Evaluate formula text (with or without leading ``=``) or an AST."""
    node = parse_formula(formula) if isinstance(formula, str) else formula
    return _eval(node, context)


def _eval(node: FormulaNode, context: EvalContext) -> Any:
    if isinstance(node, Number):
        return node.value
    if isinstance(node, Text):
        return node.value
    if isinstance(node, Boolean):
        return node.value
    if isinstance(node, CellRef):
        return context.cell_value(node.address)
    if isinstance(node, RangeRef):
        return context.range_values(node.range)
    if isinstance(node, Unary):
        value = _eval(node.operand, context)
        number = to_number(_deref_single(value))
        return -number if node.op == "-" else number
    if isinstance(node, Binary):
        return _eval_binary(node, context)
    if isinstance(node, Call):
        return _eval_call(node, context)
    raise FormulaEvalError(f"cannot evaluate node {type(node).__name__}")


def _deref_single(value: Any) -> Any:
    """A range used where a scalar is expected contributes its sole cell
    (Excel's implicit intersection, simplified)."""
    if isinstance(value, RangeValues):
        if value.n_rows == 1 and value.n_cols == 1:
            return value.grid[0][0]
        raise FormulaEvalError("range used where a single value is expected")
    return value


def _eval_binary(node: Binary, context: EvalContext) -> Any:
    left = _deref_single(_eval(node.left, context))
    right = _deref_single(_eval(node.right, context))
    op = node.op
    if op == "&":
        return to_text(left) + to_text(right)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        ordering = compare(left, right)
        return {
            "=": ordering == 0,
            "<>": ordering != 0,
            "<": ordering < 0,
            "<=": ordering <= 0,
            ">": ordering > 0,
            ">=": ordering >= 0,
        }[op]
    left_n = to_number(left)
    right_n = to_number(right)
    if op == "+":
        return left_n + right_n
    if op == "-":
        return left_n - right_n
    if op == "*":
        return left_n * right_n
    if op == "/":
        if right_n == 0:
            raise FormulaEvalError("division by zero", "#DIV/0!")
        result = left_n / right_n
        if isinstance(left_n, int) and isinstance(right_n, int) and result == int(result):
            return int(result)
        return result
    if op == "^":
        try:
            return left_n ** right_n
        except (OverflowError, ValueError):
            raise FormulaEvalError("invalid exponentiation", "#VALUE!") from None
    raise FormulaEvalError(f"unknown operator {op!r}")


def _eval_call(node: Call, context: EvalContext) -> Any:
    name = node.name
    # -- special (lazy) forms ------------------------------------------
    if name == "IF":
        if not (2 <= len(node.args) <= 3):
            raise FormulaEvalError("IF takes 2 or 3 arguments")
        condition = to_bool(_deref_single(_eval(node.args[0], context)))
        if condition:
            return _eval(node.args[1], context)
        if len(node.args) == 3:
            return _eval(node.args[2], context)
        return False
    if name == "IFERROR":
        if len(node.args) != 2:
            raise FormulaEvalError("IFERROR takes 2 arguments")
        try:
            return _eval(node.args[0], context)
        except FormulaEvalError:
            return _eval(node.args[1], context)
    if name == "ISERROR":
        if len(node.args) != 1:
            raise FormulaEvalError("ISERROR takes 1 argument")
        try:
            _eval(node.args[0], context)
            return False
        except FormulaEvalError:
            return True

    args = [_eval(argument, context) for argument in node.args]
    fn = FUNCTIONS.get(name)
    if fn is None:
        # Host / DataSpread extension functions (DBSQL, DBTABLE, ...).
        return context.call_extension(name, args)
    try:
        return fn(*args)
    except FormulaEvalError:
        raise
    except ZeroDivisionError:
        raise FormulaEvalError("division by zero", "#DIV/0!") from None
    except TypeError as error:
        raise FormulaEvalError(f"{name}: {error}") from None
    except (ValueError, ArithmeticError) as error:
        raise FormulaEvalError(f"{name}: {error}") from None
