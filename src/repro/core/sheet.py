"""A sheet: a sparse, unbounded grid of cells over the interface storage
manager.

The sheet is deliberately *passive*: it stores :class:`~repro.core.cell.Cell`
objects in a :class:`~repro.interface_storage.CellStore` and answers
geometric queries.  Formula evaluation, DBSQL/DBTABLE semantics and sync
are orchestrated by the :class:`~repro.core.workbook.Workbook`, which owns
the compute engine and the database — mirroring the paper's architecture
where the interface storage manager is dumb storage and the interface
manager supplies the intelligence.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple, Union

from repro.core.address import CellAddress, RangeAddress, parse_reference
from repro.core.cell import Cell, CellKind
from repro.errors import SheetError
from repro.interface_storage import CellStore

__all__ = ["Sheet"]

RefLike = Union[str, CellAddress]
RangeLike = Union[str, RangeAddress]


class Sheet:
    """One named sheet of a workbook."""

    def __init__(
        self,
        name: str,
        tile_rows: int = 64,
        tile_cols: int = 16,
        index_kind: str = "grid",
    ):
        if not name:
            raise SheetError("sheet name must be non-empty")
        self.name = name
        self.store = CellStore(tile_rows, tile_cols, index_kind)

    # -- address helpers ------------------------------------------------------

    def _addr(self, ref: RefLike) -> CellAddress:
        if isinstance(ref, CellAddress):
            return ref
        return CellAddress.parse(ref)

    def _range(self, ref: RangeLike) -> RangeAddress:
        if isinstance(ref, RangeAddress):
            return ref
        return RangeAddress.parse(ref)

    # -- cell access ------------------------------------------------------------

    def cell(self, ref: RefLike) -> Optional[Cell]:
        address = self._addr(ref)
        return self.store.get(address.row, address.col)

    def cell_at(self, row: int, col: int) -> Optional[Cell]:
        return self.store.get(row, col)

    def ensure_cell(self, ref: RefLike) -> Cell:
        address = self._addr(ref)
        cell = self.store.get(address.row, address.col)
        if cell is None:
            cell = Cell()
            self.store.set(address.row, address.col, cell)
        return cell

    def value(self, ref: RefLike) -> Any:
        cell = self.cell(ref)
        return cell.value if cell is not None else None

    def value_at(self, row: int, col: int) -> Any:
        cell = self.store.get(row, col)
        return cell.value if cell is not None else None

    def display(self, ref: RefLike) -> str:
        cell = self.cell(ref)
        return cell.display() if cell is not None else ""

    def set_value(self, ref: RefLike, value: Any) -> Cell:
        """Set a plain (already-computed) value; does NOT route through the
        compute engine — use Workbook.set for user input."""
        cell = self.ensure_cell(ref)
        cell.set_value(value)
        return cell

    def clear_cell(self, ref: RefLike) -> None:
        address = self._addr(ref)
        self.store.delete(address.row, address.col)

    # -- range access --------------------------------------------------------------

    def range_cells(self, ref: RangeLike) -> Iterator[Tuple[CellAddress, Cell]]:
        """Occupied cells in the range, row-major."""
        reference = self._range(ref)
        for row, col, cell in self.store.get_range(
            reference.start.row,
            reference.start.col,
            reference.end.row,
            reference.end.col,
        ):
            yield CellAddress(row, col, sheet=self.name), cell

    def grid(self, ref: RangeLike) -> List[List[Any]]:
        """Dense value grid for a range (blanks are None)."""
        reference = self._range(ref)
        grid = [[None] * reference.n_cols for _ in range(reference.n_rows)]
        for address, cell in self.range_cells(reference):
            grid[address.row - reference.start.row][address.col - reference.start.col] = cell.value
        return grid

    def set_grid(self, anchor: RefLike, rows: List[List[Any]]) -> RangeAddress:
        """Write a dense grid of plain values anchored at ``anchor``."""
        top_left = self._addr(anchor)
        n_rows = len(rows)
        n_cols = max((len(row) for row in rows), default=0)
        for row_offset, row in enumerate(rows):
            for col_offset, value in enumerate(row):
                self.set_value(
                    CellAddress(top_left.row + row_offset, top_left.col + col_offset),
                    value,
                )
        return RangeAddress.from_dimensions(
            top_left.row, top_left.col, max(n_rows, 1), max(n_cols, 1), sheet=self.name
        )

    def clear_range(self, ref: RangeLike) -> int:
        reference = self._range(ref)
        return self.store.clear_range(
            reference.start.row,
            reference.start.col,
            reference.end.row,
            reference.end.col,
        )

    def used_range(self) -> Optional[RangeAddress]:
        bounds = self.store.used_bounds()
        if bounds is None:
            return None
        top, left, bottom, right = bounds
        return RangeAddress(
            CellAddress(top, left, sheet=self.name),
            CellAddress(bottom, right, sheet=self.name),
        )

    @property
    def n_cells(self) -> int:
        return len(self.store)

    # -- formula inventory (used by the workbook for structural edits) -------

    def formula_cells(self) -> Iterator[Tuple[CellAddress, Cell]]:
        for row, col, cell in self.store.items():
            if cell.is_formula:
                yield CellAddress(row, col, sheet=self.name), cell

    # -- structural edits (key-space splices in the store — no cell moves;
    #    the workbook rewrites formulas and re-anchors regions) -------------

    def insert_rows(self, at: int, count: int = 1) -> int:
        return self.store.insert_rows(at, count)

    def delete_rows(self, at: int, count: int = 1) -> int:
        return self.store.delete_rows(at, count)

    def insert_cols(self, at: int, count: int = 1) -> int:
        return self.store.insert_cols(at, count)

    def delete_cols(self, at: int, count: int = 1) -> int:
        return self.store.delete_cols(at, count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sheet({self.name!r}, {self.n_cells} cells)"
