"""Positional addressing: A1-style cell and range references.

The paper (§2.2, *Make Databases Interface Aware*) builds on positional
addressing — "an intuitive and effective way to refer to presented data".
This module is the single source of truth for spreadsheet coordinates used
everywhere else: by the formula language, by ``RANGEVALUE``/``RANGETABLE``
rewriting, by the interface storage manager and by the sync layer.

Coordinates are **0-based** internally (row 0 is the A1 row ``1``); the A1
rendering is 1-based, matching what a spreadsheet user sees.  Both absolute
(``$A$1``) and relative references are supported, along with relative
offsetting, which is what lets formulas be copied across cells while
"maintaining the relative references" (paper §2.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Iterator, Optional, Tuple

from repro.errors import AddressError

__all__ = [
    "MAX_ROWS",
    "MAX_COLS",
    "column_label",
    "column_index",
    "CellAddress",
    "RangeAddress",
    "parse_reference",
]

#: Hard bounds, matching modern spreadsheet limits closely enough for tests.
MAX_ROWS = 2 ** 31
MAX_COLS = 2 ** 20

_CELL_RE = re.compile(
    r"^(?:(?P<sheet>(?:'[^']+')|(?:[A-Za-z_][A-Za-z0-9_]*))!)?"
    r"(?P<cabs>\$?)(?P<col>[A-Za-z]{1,7})(?P<rabs>\$?)(?P<row>[0-9]+)$"
)

_RANGE_SPLIT_RE = re.compile(r":(?![^']*'!)")


def column_label(index: int) -> str:
    """Convert a 0-based column index to its spreadsheet letters.

    >>> column_label(0)
    'A'
    >>> column_label(27)
    'AB'
    """
    if index < 0:
        raise AddressError(f"column index must be >= 0, got {index}")
    label = []
    index += 1  # bijective base-26
    while index > 0:
        index, rem = divmod(index - 1, 26)
        label.append(chr(ord("A") + rem))
    return "".join(reversed(label))


def column_index(label: str) -> int:
    """Convert spreadsheet column letters to a 0-based index.

    >>> column_index('A')
    0
    >>> column_index('AB')
    27
    """
    if not label or not label.isalpha():
        raise AddressError(f"invalid column label {label!r}")
    index = 0
    for ch in label.upper():
        index = index * 26 + (ord(ch) - ord("A") + 1)
    return index - 1


def _strip_sheet_quotes(sheet: Optional[str]) -> Optional[str]:
    if sheet and sheet.startswith("'") and sheet.endswith("'"):
        return sheet[1:-1]
    return sheet


@dataclass(frozen=True, order=True)
class CellAddress:
    """A single cell reference: ``(row, col)`` plus optional sheet name and
    absolute flags.

    Ordering is row-major, which gives the natural top-to-bottom,
    left-to-right reading order used by range iteration and by the interface
    storage manager's proximity blocking.
    """

    row: int
    col: int
    sheet: Optional[str] = None
    row_absolute: bool = False
    col_absolute: bool = False

    def __post_init__(self) -> None:
        if self.row < 0 or self.row >= MAX_ROWS:
            raise AddressError(f"row {self.row} out of bounds")
        if self.col < 0 or self.col >= MAX_COLS:
            raise AddressError(f"col {self.col} out of bounds")

    # -- construction -------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "CellAddress":
        """Parse an A1-style reference such as ``B3``, ``$C$7`` or
        ``Sheet2!A1``."""
        match = _CELL_RE.match(text.strip())
        if not match:
            raise AddressError(f"invalid cell reference {text!r}")
        return cls(
            row=int(match.group("row")) - 1,
            col=column_index(match.group("col")),
            sheet=_strip_sheet_quotes(match.group("sheet")),
            row_absolute=match.group("rabs") == "$",
            col_absolute=match.group("cabs") == "$",
        )

    # -- rendering -----------------------------------------------------

    def to_a1(self, include_sheet: bool = True) -> str:
        """Render back to A1 notation, preserving ``$`` flags."""
        col_part = ("$" if self.col_absolute else "") + column_label(self.col)
        row_part = ("$" if self.row_absolute else "") + str(self.row + 1)
        body = col_part + row_part
        if include_sheet and self.sheet is not None:
            sheet = self.sheet
            if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", sheet):
                sheet = f"'{sheet}'"
            return f"{sheet}!{body}"
        return body

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_a1()

    # -- arithmetic ------------------------------------------------------

    def offset(self, d_row: int, d_col: int) -> "CellAddress":
        """Shift by a relative delta, respecting absolute flags.

        This implements relative-reference copying: an absolute coordinate
        does not move, a relative one does.  Raises :class:`AddressError` if
        the shift would leave the sheet (the spreadsheet ``#REF!`` case).
        """
        new_row = self.row if self.row_absolute else self.row + d_row
        new_col = self.col if self.col_absolute else self.col + d_col
        if new_row < 0 or new_col < 0:
            raise AddressError(
                f"offset of {self.to_a1()} by ({d_row},{d_col}) leaves the sheet"
            )
        return replace(self, row=new_row, col=new_col)

    def translate(self, d_row: int, d_col: int) -> "CellAddress":
        """Shift unconditionally (ignores the absolute flags).  Used when a
        whole region moves, e.g. a ``DBTABLE`` re-anchoring."""
        new_row = self.row + d_row
        new_col = self.col + d_col
        if new_row < 0 or new_col < 0:
            raise AddressError(
                f"translate of {self.to_a1()} by ({d_row},{d_col}) leaves the sheet"
            )
        return replace(self, row=new_row, col=new_col)

    def with_sheet(self, sheet: Optional[str]) -> "CellAddress":
        return replace(self, sheet=sheet)

    def anchor(self) -> Tuple[int, int]:
        """The bare coordinate pair, dropping sheet and flags."""
        return (self.row, self.col)


@dataclass(frozen=True)
class RangeAddress:
    """A rectangular range, normalised so ``start`` is top-left and ``end``
    bottom-right (inclusive on both ends, like A1 ranges)."""

    start: CellAddress
    end: CellAddress

    def __post_init__(self) -> None:
        if self.start.sheet != self.end.sheet and self.end.sheet is not None:
            raise AddressError("range endpoints must be on the same sheet")
        if self.start.row > self.end.row or self.start.col > self.end.col:
            # Normalise: spreadsheet users may type D10:A1.
            top = min(self.start.row, self.end.row)
            left = min(self.start.col, self.end.col)
            bottom = max(self.start.row, self.end.row)
            right = max(self.start.col, self.end.col)
            object.__setattr__(self, "start", replace(self.start, row=top, col=left))
            object.__setattr__(self, "end", replace(self.end, row=bottom, col=right))

    # -- construction -------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "RangeAddress":
        """Parse ``A1:D100``, ``Sheet2!A1:B2`` or a single cell ``B3`` (a
        1x1 range)."""
        text = text.strip()
        if ":" in text:
            left_text, right_text = text.split(":", 1)
            start = CellAddress.parse(left_text)
            end = CellAddress.parse(right_text)
            if end.sheet is None and start.sheet is not None:
                end = end.with_sheet(start.sheet)
            return cls(start, end)
        cell = CellAddress.parse(text)
        return cls(cell, cell)

    @classmethod
    def from_dimensions(
        cls,
        top: int,
        left: int,
        n_rows: int,
        n_cols: int,
        sheet: Optional[str] = None,
    ) -> "RangeAddress":
        if n_rows <= 0 or n_cols <= 0:
            raise AddressError("range dimensions must be positive")
        return cls(
            CellAddress(top, left, sheet=sheet),
            CellAddress(top + n_rows - 1, left + n_cols - 1, sheet=sheet),
        )

    # -- geometry ------------------------------------------------------

    @property
    def sheet(self) -> Optional[str]:
        return self.start.sheet

    @property
    def n_rows(self) -> int:
        return self.end.row - self.start.row + 1

    @property
    def n_cols(self) -> int:
        return self.end.col - self.start.col + 1

    @property
    def size(self) -> int:
        return self.n_rows * self.n_cols

    def is_single_cell(self) -> bool:
        return self.size == 1

    def contains(self, address: CellAddress) -> bool:
        if self.sheet is not None and address.sheet is not None and address.sheet != self.sheet:
            return False
        return (
            self.start.row <= address.row <= self.end.row
            and self.start.col <= address.col <= self.end.col
        )

    def contains_range(self, other: "RangeAddress") -> bool:
        return self.contains(other.start) and self.contains(other.end)

    def intersects(self, other: "RangeAddress") -> bool:
        if (
            self.sheet is not None
            and other.sheet is not None
            and self.sheet != other.sheet
        ):
            return False
        return not (
            other.start.row > self.end.row
            or other.end.row < self.start.row
            or other.start.col > self.end.col
            or other.end.col < self.start.col
        )

    def intersection(self, other: "RangeAddress") -> Optional["RangeAddress"]:
        if not self.intersects(other):
            return None
        top = max(self.start.row, other.start.row)
        left = max(self.start.col, other.start.col)
        bottom = min(self.end.row, other.end.row)
        right = min(self.end.col, other.end.col)
        return RangeAddress(
            CellAddress(top, left, sheet=self.sheet),
            CellAddress(bottom, right, sheet=self.sheet),
        )

    def union_bounding_box(self, other: "RangeAddress") -> "RangeAddress":
        top = min(self.start.row, other.start.row)
        left = min(self.start.col, other.start.col)
        bottom = max(self.end.row, other.end.row)
        right = max(self.end.col, other.end.col)
        return RangeAddress(
            CellAddress(top, left, sheet=self.sheet),
            CellAddress(bottom, right, sheet=self.sheet),
        )

    def expand(self, d_rows: int, d_cols: int) -> "RangeAddress":
        """Grow (or shrink, with negative deltas) the bottom-right corner."""
        return RangeAddress(
            self.start,
            replace(self.end, row=self.end.row + d_rows, col=self.end.col + d_cols),
        )

    def translate(self, d_row: int, d_col: int) -> "RangeAddress":
        return RangeAddress(
            self.start.translate(d_row, d_col), self.end.translate(d_row, d_col)
        )

    # -- iteration -----------------------------------------------------

    def cells(self) -> Iterator[CellAddress]:
        """All member cells in row-major order."""
        sheet = self.sheet
        for row in range(self.start.row, self.end.row + 1):
            for col in range(self.start.col, self.end.col + 1):
                yield CellAddress(row, col, sheet=sheet)

    def rows(self) -> Iterator["RangeAddress"]:
        """Each row of the range as its own 1×n_cols range."""
        for row in range(self.start.row, self.end.row + 1):
            yield RangeAddress(
                CellAddress(row, self.start.col, sheet=self.sheet),
                CellAddress(row, self.end.col, sheet=self.sheet),
            )

    def columns(self) -> Iterator["RangeAddress"]:
        for col in range(self.start.col, self.end.col + 1):
            yield RangeAddress(
                CellAddress(self.start.row, col, sheet=self.sheet),
                CellAddress(self.end.row, col, sheet=self.sheet),
            )

    def cell_at(self, row_offset: int, col_offset: int) -> CellAddress:
        """Cell at a 0-based offset from the range's top-left corner."""
        if not (0 <= row_offset < self.n_rows and 0 <= col_offset < self.n_cols):
            raise AddressError(
                f"offset ({row_offset},{col_offset}) outside {self.to_a1()}"
            )
        return CellAddress(
            self.start.row + row_offset, self.start.col + col_offset, sheet=self.sheet
        )

    # -- rendering -----------------------------------------------------

    def to_a1(self, include_sheet: bool = True) -> str:
        if self.is_single_cell():
            return self.start.to_a1(include_sheet)
        start = self.start.to_a1(include_sheet)
        end = self.end.to_a1(include_sheet=False)
        return f"{start}:{end}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_a1()

    def __iter__(self) -> Iterator[CellAddress]:
        return self.cells()


def parse_reference(text: str):
    """Parse either a cell or a range; returns :class:`CellAddress` or
    :class:`RangeAddress` accordingly."""
    text = text.strip()
    if ":" in text:
        return RangeAddress.parse(text)
    return CellAddress.parse(text)
