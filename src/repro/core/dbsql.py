"""``DBSQL``: arbitrary SQL in a cell, spilling its result onto the sheet.

Paper §2.2: "DBSQL enables users to pose arbitrary queries combining data
present on the spreadsheet, and data stored in the relational database" —
with ``RANGEVALUE`` for scalar cell references and ``RANGETABLE`` to treat
any sheet range as a relation.  Paper §4, Feature 1: "The output of the
query is not limited to a single cell, but spans the range B3:B10.  This
enables the collection of cells to be computed collectively in a single
pass (as opposed to traditional spreadsheet formulae that are
one-per-cell)."

Implementation: a cell formula ``=DBSQL("SELECT ...")`` creates a
:class:`DBSQLRegion`.  The region

* resolves ``RANGEVALUE``/``RANGETABLE`` against the live sheet through a
  :class:`SheetRangeResolver` (demand-evaluating referenced formulas first),
* executes the statement **once** and spills the whole result grid below
  the anchor (the single-pass claim E10 measures),
* registers the referenced cells/ranges as compute-graph precedents of the
  anchor (editing ``B1`` re-runs the query) and the referenced tables in
  its display context (a back-end change re-runs it too — Feature 3).
"""

from __future__ import annotations

from typing import Any, List, Optional, Set, Tuple

from repro.core.address import CellAddress, RangeAddress, parse_reference
from repro.core.cell import Cell
from repro.core.context import DisplayContext
from repro.engine import sql_ast as ast
from repro.engine.planner import RangeResolver
from repro.engine.sql_parser import parse_statement
from repro.errors import FormulaEvalError, RegionError, SqlError
from repro.core.address import column_label

__all__ = ["SheetRangeResolver", "DBSQLRegion", "extract_sql_dependencies"]


class SheetRangeResolver(RangeResolver):
    """Resolves DataSpread SQL constructs against workbook sheets."""

    def __init__(self, workbook, base_sheet: str):
        self.workbook = workbook
        self.base_sheet = base_sheet

    def resolve_range_value(self, reference: str) -> Any:
        address = CellAddress.parse(reference)
        sheet = address.sheet or self.base_sheet
        return self.workbook.compute.demand_value((sheet, address.row, address.col))

    def resolve_range_table(
        self, reference: str
    ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        rng = RangeAddress.parse(reference)
        sheet = rng.sheet or self.base_sheet
        grid: List[List[Any]] = []
        for row in range(rng.start.row, rng.end.row + 1):
            grid.append(
                [
                    self.workbook.compute.demand_value((sheet, row, col))
                    for col in range(rng.start.col, rng.end.col + 1)
                ]
            )
        return grid_to_relation(grid, rng)


def grid_to_relation(
    grid: List[List[Any]], rng: RangeAddress
) -> Tuple[List[str], List[Tuple[Any, ...]]]:
    """Interpret a value grid as a relation.

    Header detection mirrors table creation (Fig 2b): if the first row is
    all non-empty text, unique, and at least one later row contains a
    non-text value, the first row provides attribute names; otherwise
    attributes are named after their spreadsheet columns (``a``, ``b``,…).
    """
    if not grid:
        return ([], [])
    first = grid[0]
    names_ok = (
        all(isinstance(value, str) and value.strip() for value in first)
        and len({str(v).strip().lower() for v in first}) == len(first)
    )
    body_has_nontext = any(
        any(not isinstance(value, str) and value is not None for value in row)
        for row in grid[1:]
    )
    if names_ok and (body_has_nontext or len(grid) > 1):
        columns = [str(value).strip().lower().replace(" ", "_") for value in first]
        rows = [tuple(row) for row in grid[1:]]
    else:
        columns = [
            column_label(rng.start.col + offset).lower()
            for offset in range(rng.n_cols)
        ]
        rows = [tuple(row) for row in grid]
    return (columns, rows)


def extract_sql_dependencies(
    statement: ast.Statement, base_sheet: str
) -> Tuple[Set[CellAddress], Set[RangeAddress], Set[str]]:
    """Cells (RANGEVALUE), ranges (RANGETABLE) and table names a statement
    reads — the precedents of a DBSQL region."""
    cells: Set[CellAddress] = set()
    ranges: Set[RangeAddress] = set()
    tables: Set[str] = set()

    def on_expression(expression: ast.Expression) -> None:
        for node in ast.walk_expression(expression):
            if isinstance(node, ast.RangeValue):
                address = CellAddress.parse(node.reference)
                if address.sheet is None:
                    address = address.with_sheet(base_sheet)
                cells.add(address)
            elif isinstance(node, (ast.ScalarSubquery, ast.InSubquery)):
                on_select(node.select)

    def on_source(item: Optional[ast.FromItem]) -> None:
        if item is None:
            return
        if isinstance(item, ast.TableRef):
            tables.add(item.name.lower())
        elif isinstance(item, ast.RangeTable):
            reference = RangeAddress.parse(item.reference)
            if reference.sheet is None:
                reference = RangeAddress(
                    reference.start.with_sheet(base_sheet),
                    reference.end.with_sheet(base_sheet),
                )
            ranges.add(reference)
        elif isinstance(item, ast.SubquerySource):
            on_select(item.select)
        elif isinstance(item, ast.Join):
            on_source(item.left)
            on_source(item.right)
            if item.condition is not None:
                on_expression(item.condition)

    def on_select(select: ast.SelectStmt) -> None:
        for select_item in select.items:
            if not isinstance(select_item.expression, ast.Star):
                on_expression(select_item.expression)
        on_source(select.source)
        if select.where is not None:
            on_expression(select.where)
        for group in select.group_by:
            on_expression(group)
        if select.having is not None:
            on_expression(select.having)
        for order in select.order_by:
            on_expression(order.expression)

    if isinstance(statement, ast.SelectStmt):
        on_select(statement)
    elif isinstance(statement, ast.CompoundSelect):
        for member in statement.selects:
            on_select(member)
    elif isinstance(statement, ast.InsertStmt):
        tables.add(statement.table.lower())
        if statement.select is not None:
            on_select(statement.select)
        for row in statement.rows:
            for expression in row:
                on_expression(expression)
    elif isinstance(statement, (ast.UpdateStmt, ast.DeleteStmt)):
        tables.add(statement.table.lower())
        if statement.where is not None:
            on_expression(statement.where)
        if isinstance(statement, ast.UpdateStmt):
            for _, expression in statement.assignments:
                on_expression(expression)
    return cells, ranges, tables


class DBSQLRegion:
    """A live query result displayed on a sheet."""

    def __init__(
        self,
        workbook,
        region_id: int,
        sheet: str,
        anchor: CellAddress,
        sql: str,
        include_headers: bool = False,
    ):
        self.workbook = workbook
        self.sql = sql
        self.include_headers = include_headers
        self.statement = parse_statement(sql)
        if not isinstance(self.statement, (ast.SelectStmt, ast.CompoundSelect)):
            raise SqlError("DBSQL only embeds SELECT statements")
        cells, ranges, tables = extract_sql_dependencies(self.statement, sheet)
        self.precedent_cells = cells
        self.precedent_ranges = ranges
        self.context = DisplayContext(
            region_id=region_id,
            kind="dbsql",
            sheet=sheet,
            anchor=anchor,
            extent=RangeAddress(anchor, anchor),
            source_tables=set(tables),
            description=sql,
        )
        self.refresh_count = 0
        self.last_row_count = 0

    # -- rendering ------------------------------------------------------------

    def refresh(self) -> Any:
        """Run the query once and spill; returns the anchor cell's value."""
        workbook = self.workbook
        resolver = SheetRangeResolver(workbook, self.context.sheet)
        result = workbook.database.execute(self.sql, resolver=resolver)
        self.refresh_count += 1
        self.last_row_count = len(result.rows)
        grid: List[List[Any]] = []
        if self.include_headers:
            grid.append(list(result.columns))
        grid.extend(list(row) for row in result.rows)
        if not grid:
            grid = [[None]]
        anchor_value = self._spill(grid)
        return anchor_value

    def _spill(self, grid: List[List[Any]]) -> Any:
        sheet = self.workbook.sheet(self.context.sheet)
        anchor = self.context.anchor
        n_rows = len(grid)
        n_cols = max(len(row) for row in grid)
        new_extent = RangeAddress.from_dimensions(
            anchor.row, anchor.col, n_rows, n_cols, sheet=self.context.sheet
        )
        # Clear cells from the previous extent that the new one doesn't cover
        # (only cells this region owns).
        changed_keys = []
        old_extent = self.context.extent
        if old_extent is not None:
            for address, cell in list(sheet.range_cells(old_extent)):
                if cell.region_id == self.context.region_id and not new_extent.contains(address):
                    sheet.clear_cell(address)
                    changed_keys.append((self.context.sheet, address.row, address.col))
        for row_offset, row in enumerate(grid):
            for col_offset in range(n_cols):
                value = row[col_offset] if col_offset < len(row) else None
                address = CellAddress(anchor.row + row_offset, anchor.col + col_offset)
                cell = sheet.ensure_cell(address)
                if (
                    cell.region_id not in (None, self.context.region_id)
                    and not (address.row == anchor.row and address.col == anchor.col)
                ):
                    raise RegionError(
                        f"DBSQL spill at {address.to_a1()} would overwrite "
                        f"region {cell.region_id}"
                    )
                cell.set_value(value)
                cell.region_id = self.context.region_id
                changed_keys.append((self.context.sheet, address.row, address.col))
        self.context.extent = new_extent
        # Anchor keeps its formula text; dependents of any spilled cell react.
        self.workbook.compute.on_values_changed(changed_keys)
        return grid[0][0] if grid and grid[0] else None

    # -- sync hooks --------------------------------------------------------------

    def on_db_change(self, event) -> None:
        """A source table changed: re-queue the anchor for recomputation."""
        self.workbook.mark_region_stale(self)

    def clear(self) -> None:
        """Remove the spill from the sheet (region teardown)."""
        sheet = self.workbook.sheet(self.context.sheet)
        if self.context.extent is not None:
            for address, cell in list(sheet.range_cells(self.context.extent)):
                if cell.region_id == self.context.region_id:
                    sheet.clear_cell(address)
