"""Two-way synchronisation (paper §2.2(b), §4 Feature 3).

"Using spreadsheets users are accustomed to having an always updated copy
with them.  For this we propose a real time two way synchronization of the
displayed [data] on the spreadsheet with the underlying database."

The :class:`SyncManager` subscribes to the database's committed
:class:`~repro.engine.table.ChangeEvent` feed and routes each event to the
display regions showing that table.  The *front-end → database* direction
does not pass through here: regions translate edits directly into table
mutations (see :meth:`DBTableRegion.apply_edit`), whose events then fan out
through this manager to every *other* interested region — which is exactly
the Fig 2c demonstration: edit a DBTABLE cell, and a DBSQL region
referencing the same table refreshes immediately.

Refreshes are batched per "round": an event marks regions stale; the
workbook flushes stale regions after the originating mutation completes,
so a 100-row bulk insert triggers one refresh, not 100.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.engine.table import ChangeEvent

__all__ = ["SyncManager", "SyncStats"]


@dataclass
class SyncStats:
    events_received: int = 0
    regions_refreshed: int = 0
    events_by_kind: Dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        self.events_received = 0
        self.regions_refreshed = 0
        self.events_by_kind.clear()


class SyncManager:
    """Routes database change events to display regions."""

    def __init__(self, workbook):
        self.workbook = workbook
        self.stats = SyncStats()
        self._stale_region_ids: Set[int] = set()
        self._log: List[ChangeEvent] = []
        self.keep_log = False

    # -- event intake (registered as a Database listener) -------------------

    def on_event(self, event: ChangeEvent) -> None:
        self.stats.events_received += 1
        self.stats.events_by_kind[event.kind] = (
            self.stats.events_by_kind.get(event.kind, 0) + 1
        )
        if self.keep_log:
            self._log.append(event)
        for region in self.workbook.regions.regions_of_table(event.table):
            region.on_db_change(event)

    def event_log(self) -> List[ChangeEvent]:
        return list(self._log)

    # -- stale-region batching ----------------------------------------------------

    def mark_stale(self, region_id: int) -> None:
        self._stale_region_ids.add(region_id)

    @property
    def n_stale(self) -> int:
        return len(self._stale_region_ids)

    def flush(self) -> int:
        """Refresh every stale region once; returns refresh count.

        Refreshing a region can itself mark other regions stale (a DBSQL
        whose spill feeds a RANGETABLE of another DBSQL); the loop runs to
        fixpoint with a safety bound."""
        refreshed = 0
        rounds = 0
        while self._stale_region_ids:
            rounds += 1
            if rounds > 32:
                raise RuntimeError(
                    "sync did not converge: regions keep invalidating each other"
                )
            batch = sorted(self._stale_region_ids)
            self._stale_region_ids.clear()
            for region_id in batch:
                region = self.workbook.regions.get(region_id)
                if region is None:
                    continue
                region.refresh()
                self.workbook._notify_region_refreshed(region)
                refreshed += 1
                self.stats.regions_refreshed += 1
        return refreshed
