"""``DBTABLE``: a sheet region that *is* a database table.

Paper §2.2: "DBTABLE enables users to declare a portion of the spreadsheet
as being either exported to or imported from the relational database, i.e.,
that portion of the spreadsheet directly reflects the contents of a
relational database table."  Fig 2b/2c: after *create table*, the data on
the sheet is replaced by a ``DBTABLE`` formula; edits on the region update
the database and dependents refresh immediately.

A :class:`DBTableRegion`:

* renders a **window** of the table (all rows, or a viewport-sized slice —
  the paper's scalability story: only the window is materialised; the
  positional index makes any window O(log n + w)),
* maintains the key↔position mapping the interface manager needs ("the
  interface manager maintains a mapping between a tuple's key attribute and
  its corresponding location", §3),
* translates front-end cell edits into ``UPDATE``s (by primary key when
  available, by position otherwise), appended rows into ``INSERT``s and row
  deletions into ``DELETE``s,
* refreshes from back-end :class:`~repro.engine.table.ChangeEvent`s.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.address import CellAddress, RangeAddress
from repro.core.cell import Cell, coerce_scalar
from repro.core.context import DisplayContext
from repro.engine.table import ChangeEvent, Table
from repro.errors import RegionError, SyncError
from repro.window.cache import WindowCache

__all__ = ["DBTableRegion"]


class DBTableRegion:
    """A live, two-way-synchronised view of one table."""

    def __init__(
        self,
        workbook,
        region_id: int,
        sheet: str,
        anchor: CellAddress,
        table_name: str,
        include_headers: bool = True,
        window_rows: Optional[int] = None,
        use_cache: bool = True,
    ):
        self.workbook = workbook
        self.table_name = table_name
        self.include_headers = include_headers
        self.window_rows = window_rows
        self.offset = 0  # first table position displayed
        table = workbook.database.table(table_name)
        self.context = DisplayContext(
            region_id=region_id,
            kind="dbtable",
            sheet=sheet,
            anchor=anchor,
            extent=RangeAddress(anchor, anchor),
            source_tables={table_name.lower()},
            description=f"DBTABLE({table_name})",
        )
        #: display data-row offset -> primary key (or position when no PK)
        self.row_keys: List[Any] = []
        self.cache: Optional[WindowCache] = (
            WindowCache(lambda start, count: table.window(start, count))
            if use_cache
            else None
        )
        self._suppress_events = False
        self.refresh_count = 0

    # -- geometry ---------------------------------------------------------------

    @property
    def table(self) -> Table:
        return self.workbook.database.table(self.table_name)

    @property
    def header_rows(self) -> int:
        return 1 if self.include_headers else 0

    def data_row_of(self, sheet_row: int) -> int:
        """Display data-row index (0-based) for an absolute sheet row."""
        return sheet_row - self.context.anchor.row - self.header_rows

    def column_of(self, sheet_col: int) -> str:
        offset = sheet_col - self.context.anchor.col
        names = self.table.column_names
        if not (0 <= offset < len(names)):
            raise RegionError(f"column offset {offset} outside DBTABLE width")
        return names[offset]

    # -- rendering -----------------------------------------------------------------

    def _fetch_window(self) -> List[Tuple[Any, ...]]:
        table = self.table
        if self.window_rows is None:
            return [row for _, _, row in table.scan()]
        if self.cache is not None:
            return self.cache.window(self.offset, self.window_rows)
        return table.window(self.offset, self.window_rows)

    def refresh(self) -> Any:
        """Re-render the window; returns the anchor cell value."""
        workbook = self.workbook
        sheet = workbook.sheet(self.context.sheet)
        table = self.table
        anchor = self.context.anchor
        rows = self._fetch_window()
        names = table.column_names
        grid: List[List[Any]] = []
        if self.include_headers:
            grid.append(list(names))
        grid.extend(list(row) for row in rows)
        if not grid:
            grid = [[None] * max(len(names), 1)]
        n_rows = len(grid)
        n_cols = max(len(names), 1)
        new_extent = RangeAddress.from_dimensions(
            anchor.row, anchor.col, n_rows, n_cols, sheet=self.context.sheet
        )
        changed = []
        old_extent = self.context.extent
        if old_extent is not None:
            for address, cell in list(sheet.range_cells(old_extent)):
                if cell.region_id == self.context.region_id and not new_extent.contains(address):
                    sheet.clear_cell(address)
                    changed.append((self.context.sheet, address.row, address.col))
        for row_offset, row in enumerate(grid):
            for col_offset in range(n_cols):
                value = row[col_offset] if col_offset < len(row) else None
                address = CellAddress(anchor.row + row_offset, anchor.col + col_offset)
                cell = sheet.ensure_cell(address)
                if cell.region_id not in (None, self.context.region_id) and not (
                    address.row == anchor.row and address.col == anchor.col
                ):
                    raise RegionError(
                        f"DBTABLE render at {address.to_a1()} would overwrite "
                        f"region {cell.region_id}"
                    )
                cell.set_value(value)
                cell.region_id = self.context.region_id
                changed.append((self.context.sheet, address.row, address.col))
        self.context.extent = new_extent
        # Key↔position mapping for edit translation.
        pk = table.schema.primary_key
        if pk is not None:
            key_index = table.schema.column_index(pk)
            self.row_keys = [row[key_index] for row in rows]
        else:
            self.row_keys = list(range(self.offset, self.offset + len(rows)))
        self.refresh_count += 1
        self.workbook.compute.on_values_changed(changed)
        return grid[0][0] if grid and grid[0] else None

    def scroll_to(self, offset: int) -> None:
        """Pan the window (only meaningful with bounded ``window_rows``)."""
        self.offset = max(0, offset)
        self.refresh()

    # -- front-end edits → database ----------------------------------------------------

    def apply_edit(self, sheet_row: int, sheet_col: int, raw: Any) -> None:
        """Translate an edit of a region cell into a database mutation."""
        table = self.table
        data_row = self.data_row_of(sheet_row)
        if data_row < -self.header_rows:
            raise RegionError("edit above the DBTABLE region")
        if self.include_headers and data_row == -1:
            raise RegionError("DBTABLE header cells are read-only")
        value = coerce_scalar(raw)
        column = self.column_of(sheet_col)
        self._suppress_events = True
        try:
            if data_row >= len(self.row_keys):
                self._insert_row_from_sheet(sheet_row, sheet_col, column, value)
            else:
                position = self.offset + data_row
                rid = table.rid_at(position)
                table.update_rid(rid, {column: value}, position=position)
        finally:
            self._suppress_events = False
        self._invalidate_cache()
        self.refresh()

    def _insert_row_from_sheet(
        self, sheet_row: int, sheet_col: int, column: str, value: Any
    ) -> None:
        """An edit one row below the region appends a new tuple (the
        spreadsheet idiom for adding a record)."""
        table = self.table
        if self.data_row_of(sheet_row) != len(self.row_keys):
            raise RegionError(
                "new rows must be added immediately below the DBTABLE region"
            )
        sheet = self.workbook.sheet(self.context.sheet)
        names = table.column_names
        values: List[Any] = []
        for offset, name in enumerate(names):
            if name == column:
                values.append(value)
            else:
                cell = sheet.cell_at(sheet_row, self.context.anchor.col + offset)
                values.append(cell.value if cell is not None else None)
        table.insert(values)

    def delete_row(self, sheet_row: int) -> None:
        """Delete the tuple displayed on ``sheet_row``."""
        data_row = self.data_row_of(sheet_row)
        if not (0 <= data_row < len(self.row_keys)):
            raise RegionError(f"sheet row {sheet_row} is not a DBTABLE data row")
        self._suppress_events = True
        try:
            self.table.delete_at(self.offset + data_row)
        finally:
            self._suppress_events = False
        self._invalidate_cache()
        self.refresh()

    def insert_row(self, sheet_row: int, values: List[Any]) -> None:
        """Insert a tuple at the displayed position (positional insert)."""
        data_row = self.data_row_of(sheet_row)
        if not (0 <= data_row <= len(self.row_keys)):
            raise RegionError(f"sheet row {sheet_row} is not inside the DBTABLE")
        self._suppress_events = True
        try:
            self.table.insert(values, position=self.offset + data_row)
        finally:
            self._suppress_events = False
        self._invalidate_cache()
        self.refresh()

    # -- database → front-end -----------------------------------------------------------

    def _invalidate_cache(self) -> None:
        if self.cache is not None:
            self.cache.invalidate()

    def on_db_change(self, event: ChangeEvent) -> None:
        if self._suppress_events:
            # Our own write; refresh() already runs after the edit.
            return
        self._invalidate_cache()
        self.workbook.mark_region_stale(self)

    def clear(self) -> None:
        sheet = self.workbook.sheet(self.context.sheet)
        if self.context.extent is not None:
            for address, cell in list(sheet.range_cells(self.context.extent)):
                if cell.region_id == self.context.region_id:
                    sheet.clear_cell(address)
