"""Import/export between sheets, tables and CSV (Feature 2, Fig 2b).

"On selecting a range in the sheet and selecting the create table command
..., we provide the ability to users to transform it into a relational
database table.  The schema of this table is automatically inferred using
the column heading and the data.  Optionally, users will be allowed to
specify constraints on the table, such as primary keys.  On completion, the
table is created in the underlying database.  The data on the sheet is
replaced by DBTABLE."

This module implements that pipeline:

* :func:`infer_table_schema` — header detection + per-column type
  inference (paper §2.2(c), automatic data typing),
* :func:`create_table_from_range` — range → table → DBTABLE replacement,
* CSV import/export — the §1 motivation of external data ("the course
  management software outputs actions ... into a relational database or a
  CSV file").
"""

from __future__ import annotations

import csv
import re
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.core.address import RangeAddress, column_label
from repro.core.cell import coerce_scalar
from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.store import LayoutPolicy
from repro.engine.table import Table
from repro.engine.types import DBType, infer_type, unify_types
from repro.errors import ImportExportError

__all__ = [
    "InferredSchema",
    "infer_table_schema",
    "create_table_from_grid",
    "export_table_csv",
    "import_csv_table",
]

_NAME_RE = re.compile(r"[^a-z0-9_]+")


def _sanitise_name(raw: Any, fallback: str) -> str:
    text = str(raw).strip().lower() if raw is not None else ""
    text = _NAME_RE.sub("_", text).strip("_")
    if not text or text[0].isdigit():
        return fallback
    return text


@dataclass
class InferredSchema:
    """Result of schema inference over a value grid."""

    columns: List[str]
    dtypes: List[DBType]
    has_header: bool
    data_rows: List[Tuple[Any, ...]]

    def to_table_schema(
        self, primary_key: Optional[str] = None, group_size: Optional[int] = None
    ) -> TableSchema:
        pairs = list(zip(self.columns, self.dtypes))
        return TableSchema.from_pairs(pairs, primary_key=primary_key, group_size=group_size)


def infer_table_schema(
    grid: Sequence[Sequence[Any]],
    first_col_label: int = 0,
    force_header: Optional[bool] = None,
) -> InferredSchema:
    """Infer column names and types from a rectangular value grid.

    Header heuristic (Fig 2b: "inferred using the column heading and the
    data"): the first row is a header iff every cell is non-empty text,
    the names are distinct, and either some later row contains non-text
    data or the caller forces it.  Column types are the least upper bound
    of the data values (NULL-only columns become TEXT).
    """
    if not grid or all(not row for row in grid):
        raise ImportExportError("cannot infer a schema from an empty range")
    width = max(len(row) for row in grid)
    dense = [list(row) + [None] * (width - len(row)) for row in grid]

    first = dense[0]
    looks_like_header = (
        all(isinstance(value, str) and value.strip() for value in first)
        and len({str(v).strip().lower() for v in first}) == width
    )
    if force_header is None:
        body_has_nontext = any(
            any(value is not None and not isinstance(value, str) for value in row)
            for row in dense[1:]
        )
        has_header = looks_like_header and (body_has_nontext or len(dense) == 1)
    else:
        has_header = force_header and looks_like_header

    if has_header:
        columns = []
        for index, value in enumerate(first):
            fallback = column_label(first_col_label + index).lower()
            name = _sanitise_name(value, fallback)
            while name in columns:
                name = f"{name}_{index}"
            columns.append(name)
        body = dense[1:]
    else:
        columns = [
            column_label(first_col_label + index).lower() for index in range(width)
        ]
        body = dense

    dtypes = [DBType.NULL] * width
    for row in body:
        for index, value in enumerate(row):
            dtypes[index] = unify_types(dtypes[index], infer_type(value))
    dtypes = [dtype if dtype is not DBType.NULL else DBType.TEXT for dtype in dtypes]
    return InferredSchema(columns, dtypes, has_header, [tuple(row) for row in body])


def create_table_from_grid(
    database: Database,
    name: str,
    grid: Sequence[Sequence[Any]],
    primary_key: Optional[str] = None,
    layout: Optional[LayoutPolicy] = None,
    group_size: Optional[int] = None,
    first_col_label: int = 0,
    force_header: Optional[bool] = None,
) -> Table:
    """Create and populate a table from a value grid (the engine half of
    Fig 2b; the workbook half replaces the range with a DBTABLE region)."""
    if primary_key is not None and force_header is None:
        # Naming a primary key implies the range has a header row.
        force_header = True
    inferred = infer_table_schema(grid, first_col_label, force_header)
    if primary_key is not None and primary_key.lower() not in [
        c.lower() for c in inferred.columns
    ]:
        raise ImportExportError(
            f"primary key {primary_key!r} is not one of the inferred columns "
            f"{inferred.columns}"
        )
    schema = inferred.to_table_schema(primary_key=primary_key, group_size=group_size)
    table = database.create_table(name, schema, layout=layout)
    for row in inferred.data_rows:
        table.insert(row)
    return table


def export_table_csv(database: Database, table_name: str, path: str) -> int:
    """Write a table to CSV (header + rows); returns rows written."""
    table = database.table(table_name)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        count = 0
        for _, _, row in table.scan():
            writer.writerow(["" if value is None else value for value in row])
            count += 1
    return count


def import_csv_table(
    database: Database,
    path: str,
    table_name: str,
    primary_key: Optional[str] = None,
    layout: Optional[LayoutPolicy] = None,
) -> Table:
    """Create a table from a CSV file, coercing values like cell entry
    (numbers become numbers, TRUE/FALSE booleans, ISO dates dates)."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        grid = [[coerce_scalar(value) for value in row] for row in reader]
    if not grid:
        raise ImportExportError(f"CSV file {path!r} is empty")
    return create_table_from_grid(
        database, table_name, grid, primary_key=primary_key, layout=layout,
        force_header=True,
    )
