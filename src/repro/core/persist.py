"""Workbook persistence: save/load a whole DataSpread workbook.

A workbook is more than data: it is tables (with their schemas, attribute
groups and presentation order), free-form cells, formulas, and the live
DBSQL/DBTABLE regions binding them together.  This module serialises all
of it to a single JSON document so sessions survive process restarts —
table maintenance an open-source release needs even though the demo paper
never discusses storage format.

Format (version 2; version-1 files load transparently)::

    {
      "version": 2,
      "tables": [
        {"name": ..., "layout": "hybrid",
         "columns": [{"name","type","primary_key","not_null","default"}],
         "groups": [["a","b"], ["c"]],   # the LIVE physical grouping
         "auto_layout": false,           # advisor loop on/off (v2)
         "access_stats": {...},          # decayed workload window (v2)
         "migration_target": null,       # in-flight migration target (v2)
         "group_io": [{...}, ...],       # per-group I/O counters (v2)
         "indexes": [{"name","column","unique"}],  # defs; trees rebuilt
         "rows": [[...], ...]}          # presentation order
      ],
      "sheets": [
        {"name": ..., "cells": [{"row","col","value"|"formula"}, ...]}
      ],
      "regions": [
        {"kind": "dbsql"|"dbtable", "sheet", "anchor", ...}
      ]
    }

Values are JSON-native plus ISO dates (tagged).  Regions are re-created on
load and re-render from the restored tables, so the loaded workbook is
immediately live (edits sync, formulas recalculate).

Version 2 makes the *tuned physical layout* durable: ``groups`` always
carried the live grouping, but a v1 load silently dropped the advisor
flag, the observed workload window, and any half-done online migration —
so a recovered server reverted to an untuned, advisor-off layout.  A v2
load restores all three; a v1 file loads with v2 defaults (advisor off,
cold stats, no migration).
"""

from __future__ import annotations

import datetime as _dt
import json
from typing import Any, Dict, List

from repro.core.address import CellAddress
from repro.core.workbook import Workbook
from repro.engine.database import Database
from repro.engine.schema import Column, TableSchema
from repro.engine.store import AccessStats, LayoutPolicy
from repro.engine.types import DBType
from repro.errors import ImportExportError

__all__ = ["save_workbook", "load_workbook", "workbook_to_dict", "workbook_from_dict"]

_FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


def _encode_value(value: Any) -> Any:
    if isinstance(value, _dt.datetime):
        return {"$datetime": value.isoformat()}
    if isinstance(value, _dt.date):
        return {"$date": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if "$date" in value:
            return _dt.date.fromisoformat(value["$date"])
        if "$datetime" in value:
            return _dt.datetime.fromisoformat(value["$datetime"])
    return value


def workbook_to_dict(workbook: Workbook) -> Dict[str, Any]:
    """Serialise a workbook to a JSON-compatible dict."""
    tables: List[Dict[str, Any]] = []
    for table in workbook.database.catalog.tables():
        schema = table.schema
        tables.append(
            {
                "name": table.name,
                "layout": table.store.layout.value,
                "columns": [
                    {
                        "name": column.name,
                        "type": column.dtype.value,
                        "primary_key": column.primary_key,
                        "not_null": column.not_null,
                        "default": _encode_value(column.default),
                    }
                    for column in schema.columns
                ],
                "groups": schema.groups,
                # The tuned-layout state a recovered server needs: the
                # advisor flag, the decayed workload window it advises
                # from, and any half-done online migration's target.
                "auto_layout": table.auto_layout,
                "access_stats": table.store.access_stats.to_dict(),
                "migration_target": table.layout_migration_target,
                # Cumulative per-group block I/O (aligned with "groups"):
                # pager tags are process-local, so without this the
                # layout-stats surface resets to zero on every restart.
                "group_io": table.store.group_io_snapshot(),
                # Per-group page-encoding flags (aligned with "groups"):
                # rows are dumped decoded, so the restore re-encodes the
                # flagged chains instead of persisting payload bytes.
                "encodings": table.store.encoding_snapshot(),
                # Secondary indexes: definitions only — the trees are
                # rebuilt from the restored rows on load (cheap relative
                # to the row re-inserts, and immune to format drift).
                "indexes": [
                    {
                        "name": index.name,
                        "column": index.column,
                        "unique": index.unique,
                    }
                    for index in sorted(
                        table.indexes.values(), key=lambda index: index.name.lower()
                    )
                ],
                # Presentation order, read WITHOUT charging workload
                # statistics: a dump is maintenance, not workload, and the
                # serialized access_stats above must match the live window.
                "rows": [
                    [_encode_value(value) for value in table.store.read_row(rid)]
                    for rid in table.positions
                ],
            }
        )

    region_ids = {
        getattr(region, "context").region_id for region in workbook.regions.all()
    }
    sheets: List[Dict[str, Any]] = []
    for sheet in workbook.sheets.values():
        cells = []
        for row, col, cell in sheet.store.items():
            if cell.region_id is not None and not cell.is_formula:
                continue  # region body cells are re-rendered on load
            record: Dict[str, Any] = {"row": row, "col": col}
            if cell.is_formula:
                record["formula"] = cell.formula
                if cell.region_id is not None:
                    continue  # region anchors are restored from `regions`
            else:
                record["value"] = _encode_value(cell.value)
            cells.append(record)
        sheets.append({"name": sheet.name, "cells": cells})

    regions: List[Dict[str, Any]] = []
    for region in workbook.regions.all():
        context = region.context
        record = {
            "kind": context.kind,
            "sheet": context.sheet,
            "anchor": context.anchor.to_a1(include_sheet=False),
        }
        if context.kind == "dbsql":
            record["sql"] = region.sql
            record["include_headers"] = region.include_headers
        else:
            record["table"] = region.table_name
            record["include_headers"] = region.include_headers
            record["window_rows"] = region.window_rows
            record["offset"] = region.offset
        regions.append(record)

    return {
        "version": _FORMAT_VERSION,
        "tables": tables,
        "sheets": sheets,
        "regions": regions,
    }


def workbook_from_dict(payload: Dict[str, Any], eager: bool = True) -> Workbook:
    """Rebuild a live workbook from :func:`workbook_to_dict` output.

    ``eager=False`` hands recalc scheduling to the caller (the server's
    visible-first pipeline): loaded formulas are still computed once here
    so the workbook is consistent, but later edits only *schedule* work."""
    if payload.get("version") not in _SUPPORTED_VERSIONS:
        raise ImportExportError(
            f"unsupported workbook format version {payload.get('version')!r}"
        )
    database = Database()
    for spec in payload.get("tables", []):
        columns = [
            Column(
                c["name"],
                DBType.parse(c["type"]),
                primary_key=c.get("primary_key", False),
                not_null=c.get("not_null", False),
                default=_decode_value(c.get("default")),
            )
            for c in spec["columns"]
        ]
        schema = TableSchema(columns, spec.get("groups"))
        layout = LayoutPolicy(spec.get("layout", "hybrid"))
        table = database.create_table(spec["name"], schema, layout=layout)
        for row in spec.get("rows", []):
            table.insert([_decode_value(value) for value in row], emit=False)
        for index_spec in spec.get("indexes", []) or []:
            # Rebuild each secondary index from the just-loaded rows;
            # runs BEFORE the stats/group_io overwrites below so the
            # build's own page reads don't pollute the restored window.
            table.create_index(
                index_spec["name"],
                index_spec["column"],
                unique=bool(index_spec.get("unique", False)),
            )
        table.set_auto_layout(bool(spec.get("auto_layout", False)))
        stats_spec = spec.get("access_stats")
        if stats_spec is not None:
            # Overwrite AFTER the row loads above: load-time inserts must
            # not be double-counted on top of the persisted window.
            table.store.access_stats = AccessStats.from_dict(stats_spec)
        encodings = spec.get("encodings")
        if encodings:
            # Re-encode BEFORE restore_group_io below: encode_group reads
            # and writes pages, and those maintenance charges must be
            # overwritten by the pre-crash cumulative counters, not added
            # on top of them.
            table.store.restore_encodings(encodings)
        group_io = spec.get("group_io")
        if group_io:
            # Same overwrite-after-load contract: the restart's own page
            # allocations are replaced by the pre-crash cumulative
            # counters, so the stats surface continues instead of
            # restarting from the load's write burst.
            table.store.restore_group_io(group_io)
        migration_target = spec.get("migration_target")
        if migration_target:
            # Re-arm (don't run) the half-done migration; the owner's
            # maintenance loop resumes it via Table.layout_tick.
            table.migrate_layout(
                [list(group) for group in migration_target], online=True
            )

    sheet_specs = payload.get("sheets", [])
    first_sheet = sheet_specs[0]["name"] if sheet_specs else "Sheet1"
    workbook = Workbook(database=database, default_sheet=first_sheet, eager=eager)
    for spec in sheet_specs[1:]:
        workbook.add_sheet(spec["name"])

    # Plain values first, then formulas (so precedents exist), then regions.
    deferred_formulas = []
    for spec in sheet_specs:
        for record in spec.get("cells", []):
            if "formula" in record:
                deferred_formulas.append((spec["name"], record))
            else:
                workbook.sheet(spec["name"]).set_value(
                    CellAddress(record["row"], record["col"]),
                    _decode_value(record.get("value")),
                )
    for sheet_name, record in deferred_formulas:
        workbook.set(
            sheet_name,
            CellAddress(record["row"], record["col"]),
            "=" + record["formula"],
        )
    for record in payload.get("regions", []):
        anchor = CellAddress.parse(record["anchor"])
        if record["kind"] == "dbsql":
            workbook.dbsql(
                record["sheet"],
                anchor,
                record["sql"],
                include_headers=record.get("include_headers", False),
            )
        else:
            region = workbook.dbtable(
                record["sheet"],
                anchor,
                record["table"],
                include_headers=record.get("include_headers", True),
                window_rows=record.get("window_rows"),
            )
            offset = record.get("offset", 0)
            if offset:
                region.scroll_to(offset)
    workbook.recalc_all()
    return workbook


def save_workbook(workbook: Workbook, path: str) -> None:
    """Write the workbook to a JSON file."""
    with open(path, "w") as handle:
        json.dump(workbook_to_dict(workbook), handle, indent=1)


def load_workbook(path: str, eager: bool = True) -> Workbook:
    """Load a workbook saved by :func:`save_workbook`."""
    with open(path) as handle:
        payload = json.load(handle)
    return workbook_from_dict(payload, eager=eager)
