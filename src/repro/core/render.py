"""ASCII rendering of sheet windows.

The paper's front-end is Excel; ours is programmatic, and this module is
the human-facing view: render any viewport of a sheet as a fixed-width
grid, with row numbers and column letters, the way the screenshots in
Figure 2 look.  Used by the CLI (:mod:`repro.cli`) and handy in tests and
notebooks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.address import RangeAddress, column_label
from repro.core.workbook import Workbook

__all__ = ["render_window", "render_range"]

_MAX_WIDTH = 14


def _clip(text: str, width: int) -> str:
    if len(text) <= width:
        return text.rjust(width)
    return text[: width - 1] + "…"


def render_window(
    workbook: Workbook,
    sheet_name: str,
    top: int = 0,
    left: int = 0,
    n_rows: int = 10,
    n_cols: int = 6,
    col_width: Optional[int] = None,
) -> str:
    """Render a rectangular window of a sheet as an ASCII grid."""
    sheet = workbook.sheet(sheet_name)
    grid: List[List[str]] = []
    for row in range(top, top + n_rows):
        rendered_row = []
        for col in range(left, left + n_cols):
            workbook.compute.demand_value((sheet_name, row, col))
            cell = sheet.cell_at(row, col)
            rendered_row.append(cell.display() if cell is not None else "")
        grid.append(rendered_row)

    width = col_width or min(
        max([6] + [len(value) for row in grid for value in row]), _MAX_WIDTH
    )
    row_label_width = len(str(top + n_rows))
    header = " " * (row_label_width + 1) + " ".join(
        column_label(left + c).center(width) for c in range(n_cols)
    )
    separator = " " * (row_label_width + 1) + " ".join("-" * width for _ in range(n_cols))
    lines = [header, separator]
    for offset, rendered_row in enumerate(grid):
        label = str(top + offset + 1).rjust(row_label_width)
        lines.append(
            label + " " + " ".join(_clip(value, width) for value in rendered_row)
        )
    return "\n".join(lines)


def render_range(workbook: Workbook, sheet_name: str, ref: str, **kwargs) -> str:
    """Render an A1-style range (``"A1:D10"``)."""
    reference = RangeAddress.parse(ref)
    return render_window(
        workbook,
        sheet_name,
        top=reference.start.row,
        left=reference.start.col,
        n_rows=reference.n_rows,
        n_cols=reference.n_cols,
        **kwargs,
    )
