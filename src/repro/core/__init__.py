"""Spreadsheet core: addressing, cells, sheets, workbooks and the DataSpread
constructs (``DBSQL``, ``DBTABLE``, ``RANGEVALUE``, ``RANGETABLE``).

Import order note: :mod:`repro.core.workbook` (and the regions it pulls in)
is imported lazily by :mod:`repro` to keep the address/cell primitives free
of heavyweight dependencies for the engine layer.
"""

from repro.core.address import CellAddress, RangeAddress, column_label, column_index
from repro.core.cell import Cell, CellKind, infer_cell_kind

__all__ = [
    "CellAddress",
    "RangeAddress",
    "column_label",
    "column_index",
    "Cell",
    "CellKind",
    "infer_cell_kind",
]
