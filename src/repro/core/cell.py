"""Cells and dynamic typing.

Spreadsheets "dynamically type the data stored as cells" (paper §2.2(c)).
A :class:`Cell` therefore carries a *value* plus an inferred
:class:`CellKind`; when a range is exported to the database the per-cell
kinds are aggregated into relational column types by
:mod:`repro.core.table_io`.

A cell may also hold a *formula* (text beginning with ``=``).  The formula
source is retained verbatim; the evaluated value is cached on the cell and
is invalidated/recomputed by the compute engine.
"""

from __future__ import annotations

import datetime as _dt
import math
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

__all__ = [
    "CellKind",
    "Cell",
    "infer_cell_kind",
    "coerce_scalar",
    "ERROR_LITERALS",
]

#: Spreadsheet error literals a cell can display.
ERROR_LITERALS = ("#VALUE!", "#DIV/0!", "#REF!", "#NAME?", "#CIRC!", "#N/A")

_NUMBER_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?$")
_DATE_RE = re.compile(r"^(\d{4})-(\d{2})-(\d{2})$")
_BOOL_LITERALS = {"true": True, "false": False, "TRUE": True, "FALSE": False}


class CellKind(Enum):
    """The dynamic type of a cell's *displayed* value."""

    EMPTY = "empty"
    NUMBER = "number"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"
    ERROR = "error"

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return f"CellKind.{self.name}"


def infer_cell_kind(value: Any) -> CellKind:
    """Classify an already-coerced Python value."""
    if value is None or value == "":
        return CellKind.EMPTY
    if isinstance(value, bool):
        return CellKind.BOOLEAN
    if isinstance(value, (int, float)):
        if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
            return CellKind.ERROR
        return CellKind.NUMBER
    if isinstance(value, (_dt.date, _dt.datetime)):
        return CellKind.DATE
    if isinstance(value, str):
        if value in ERROR_LITERALS:
            return CellKind.ERROR
        return CellKind.TEXT
    return CellKind.TEXT


def coerce_scalar(raw: Any) -> Any:
    """Coerce raw user input the way a spreadsheet entry bar does.

    Strings that look like numbers become numbers, ``TRUE``/``FALSE`` become
    booleans, ISO dates become :class:`datetime.date`; everything else stays
    text.  Non-string values pass through unchanged.
    """
    if not isinstance(raw, str):
        return raw
    text = raw.strip()
    if text == "":
        return None
    if text in _BOOL_LITERALS:
        return _BOOL_LITERALS[text]
    if _NUMBER_RE.match(text):
        number = float(text)
        if number.is_integer() and "e" not in text.lower() and "." not in text:
            return int(number)
        return number
    match = _DATE_RE.match(text)
    if match:
        try:
            return _dt.date(*(int(g) for g in match.groups()))
        except ValueError:
            return text
    return raw


@dataclass
class Cell:
    """One spreadsheet cell.

    Attributes
    ----------
    value:
        The current (computed, for formula cells) value.
    formula:
        The formula source text *without* the leading ``=``, or ``None`` for
        plain-value cells.
    kind:
        Dynamic type of ``value``; kept in sync by :meth:`set_value`.
    region_id:
        Identifier of the display region (``DBTABLE``/``DBSQL`` spill) this
        cell belongs to, or ``None`` for free-form cells.  Used by the
        interface manager to route edits (paper §3, Interface Manager).
    """

    value: Any = None
    formula: Optional[str] = None
    kind: CellKind = CellKind.EMPTY
    region_id: Optional[int] = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind is CellKind.EMPTY and self.value is not None:
            self.kind = infer_cell_kind(self.value)

    # -- mutation --------------------------------------------------------

    def set_value(self, value: Any) -> None:
        """Set a computed/plain value, re-inferring the dynamic type."""
        self.value = value
        self.kind = infer_cell_kind(value)

    def set_input(self, raw: Any) -> None:
        """Apply raw user input: ``=...`` installs a formula, anything else
        is coerced and stored as a plain value."""
        if isinstance(raw, str) and raw.startswith("="):
            self.formula = raw[1:]
            # Value stays stale until the compute engine evaluates it.
        else:
            self.formula = None
            self.set_value(coerce_scalar(raw))

    def set_error(self, code: str) -> None:
        if code not in ERROR_LITERALS:
            code = "#VALUE!"
        self.value = code
        self.kind = CellKind.ERROR

    def clear(self) -> None:
        self.value = None
        self.formula = None
        self.kind = CellKind.EMPTY
        self.region_id = None
        self.meta.clear()

    # -- inspection --------------------------------------------------------

    @property
    def is_formula(self) -> bool:
        return self.formula is not None

    @property
    def is_empty(self) -> bool:
        return self.kind is CellKind.EMPTY and not self.is_formula

    def display(self) -> str:
        """The string a user would see in the grid."""
        if self.value is None:
            return ""
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, float) and self.value.is_integer():
            return str(int(self.value))
        return str(self.value)

    def copy(self) -> "Cell":
        return Cell(
            value=self.value,
            formula=self.formula,
            kind=self.kind,
            region_id=self.region_id,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_formula:
            return f"Cell(={self.formula!r} -> {self.value!r})"
        return f"Cell({self.value!r})"
