"""Display contexts and the region registry (paper §3, Interface Manager).

"For every data item, e.g., the output of a query, a table imported from
the database, that is displayed on the interface, the presentation manager
assigns a context; a context comprises a positional address along with a
reference to the sheet."

A :class:`DisplayContext` is that record: where on which sheet a piece of
database-backed data lives, what produced it, and how big it currently is.
The :class:`RegionRegistry` answers the two lookups sync needs: *which
region owns this cell?* (to route a front-end edit) and *which regions show
this table?* (to route a back-end change).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.address import CellAddress, RangeAddress
from repro.errors import RegionError

__all__ = ["DisplayContext", "RegionRegistry"]


@dataclass
class DisplayContext:
    """Positional context of one displayed data item."""

    region_id: int
    kind: str  # "dbsql" | "dbtable"
    sheet: str
    anchor: CellAddress
    extent: Optional[RangeAddress] = None  # current displayed rectangle
    source_tables: Set[str] = field(default_factory=set)  # lowercase names
    description: str = ""

    def covers(self, sheet: str, row: int, col: int) -> bool:
        if sheet != self.sheet or self.extent is None:
            return False
        return self.extent.contains(CellAddress(row, col))


class RegionRegistry:
    """All live display regions of a workbook."""

    def __init__(self) -> None:
        self._regions: Dict[int, object] = {}  # region_id -> region object
        self._next_id = 1

    def new_id(self) -> int:
        region_id = self._next_id
        self._next_id += 1
        return region_id

    def add(self, region: object) -> None:
        context = getattr(region, "context")
        if context.region_id in self._regions:
            raise RegionError(f"region id {context.region_id} already registered")
        for other in self._regions.values():
            other_context = getattr(other, "context")
            if (
                other_context.sheet == context.sheet
                and other_context.extent is not None
                and context.extent is not None
                and other_context.extent.intersects(context.extent)
            ):
                raise RegionError(
                    f"new region at {context.extent.to_a1()} overlaps region "
                    f"{other_context.region_id} at {other_context.extent.to_a1()}"
                )
        self._regions[context.region_id] = region

    def remove(self, region_id: int) -> None:
        self._regions.pop(region_id, None)

    def get(self, region_id: int) -> Optional[object]:
        return self._regions.get(region_id)

    def __len__(self) -> int:
        return len(self._regions)

    def all(self) -> List[object]:
        return list(self._regions.values())

    # -- the two sync lookups ------------------------------------------------

    def region_at(self, sheet: str, row: int, col: int) -> Optional[object]:
        for region in self._regions.values():
            if getattr(region, "context").covers(sheet, row, col):
                return region
        return None

    def regions_of_table(self, table_name: str) -> List[object]:
        lowered = table_name.lower()
        return [
            region
            for region in self._regions.values()
            if lowered in getattr(region, "context").source_tables
        ]

    def regions_on_sheet(self, sheet: str) -> List[object]:
        return [
            region
            for region in self._regions.values()
            if getattr(region, "context").sheet == sheet
        ]
