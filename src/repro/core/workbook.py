"""The workbook: DataSpread's front-end facade.

A :class:`Workbook` is the holistic unification the paper proposes: sheets
(interface storage) + a relational database (back-end) + the compute engine
+ the interface manager's region registry + two-way sync, behind one
spreadsheet-shaped API:

>>> wb = Workbook()
>>> wb.set("Sheet1", "A1", 2)
>>> wb.set("Sheet1", "A2", "=A1*21")
>>> wb.get("Sheet1", "A2")
42

Database-backed constructs::

    wb.dbtable("Sheet1", "A1", "movies")                 # Fig 2b import
    wb.dbsql("Sheet1", "B3", "SELECT name FROM actors "
             "WHERE actorid = RANGEVALUE(B1)")           # Fig 2a query
    wb.create_table_from_range("Sheet1", "A1:C101", "grades",
                               primary_key="student_id")  # Fig 2b export

Editing a ``DBTABLE`` cell updates the database and every dependent region
(Fig 2c); running ``wb.execute("INSERT ...")`` updates the sheet.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.compute.engine import ComputeEngine, ComputeHost
from repro.compute.graph import CellKey
from repro.core.address import CellAddress, RangeAddress
from repro.core.cell import Cell, coerce_scalar
from repro.core.context import RegionRegistry
from repro.core.dbsql import DBSQLRegion
from repro.core.dbtable import DBTableRegion
from repro.core.sheet import Sheet
from repro.core.sync import SyncManager
from repro.core.table_io import create_table_from_grid
from repro.engine.database import Database, ResultSet
from repro.engine.store import LayoutPolicy
from repro.engine.table import Table
from repro.errors import (
    FormulaEvalError,
    FormulaSyntaxError,
    RegionError,
    SheetError,
)
from repro.formula.dependency import (
    ReferenceDeleted,
    adjust_formula_for_structural_edit,
)
from repro.formula.nodes import Call, Text
from repro.formula.parser import parse_formula
from repro.window.viewport import Viewport

__all__ = ["Workbook"]

RefLike = Union[str, CellAddress]


class Workbook(ComputeHost):
    """Sheets + database + compute + sync, unified."""

    def __init__(
        self,
        database: Optional[Database] = None,
        eager: bool = True,
        default_sheet: str = "Sheet1",
    ):
        self.database = database if database is not None else Database()
        self.sheets: Dict[str, Sheet] = {}
        self.compute = ComputeEngine(self, eager=eager)
        self.regions = RegionRegistry()
        self.sync = SyncManager(self)
        self.database.add_listener(self.sync.on_event)
        self.viewport: Optional[Viewport] = None
        self.auto_sync = True
        self._batch_depth = 0
        #: ``listener(key, value)`` after any cell write (edits, formula
        #: recomputes, error renders) — the server's delta feed.
        self.cell_listeners: List[Any] = []
        #: ``listener(region)`` after a display region re-renders.
        self.region_refresh_listeners: List[Any] = []
        # Report the spreadsheet layer (sheets, compute, sync) through the
        # database's metrics registry so every layer scrapes as one surface.
        self.database.metrics_registry.register_collector(
            self._collect_workbook_metrics
        )
        if default_sheet:
            self.add_sheet(default_sheet)

    def _collect_workbook_metrics(self) -> Dict[str, Any]:
        """Pull-collector over the existing compute/sync counter structs."""
        compute = self.compute.stats
        sync = self.sync.stats
        return {
            "wb_sheets": len(self.sheets),
            "wb_regions": len(self.regions),
            "wb_formulas": self.compute.n_formulas,
            "compute_evaluations": compute.evaluations,
            "compute_demand_evaluations": compute.demand_evaluations,
            "compute_scheduled_evaluations": compute.scheduled_evaluations,
            "compute_errors": compute.errors,
            "compute_cycles": compute.cycles,
            "compute_reparses": compute.reparses,
            "sync_events_received": sync.events_received,
            "sync_regions_refreshed": sync.regions_refreshed,
        }

    # ------------------------------------------------------------- observers

    def _notify_cell_written(self, key: CellKey, value: Any) -> None:
        for listener in self.cell_listeners:
            listener(key, value)

    def _notify_region_refreshed(self, region) -> None:
        for listener in self.region_refresh_listeners:
            listener(region)

    # ------------------------------------------------------------------ sheets

    def add_sheet(self, name: str, **kwargs: Any) -> Sheet:
        if name in self.sheets:
            raise SheetError(f"sheet {name!r} already exists")
        sheet = Sheet(name, **kwargs)
        self.sheets[name] = sheet
        return sheet

    def sheet(self, name: str) -> Sheet:
        try:
            return self.sheets[name]
        except KeyError:
            raise SheetError(f"no such sheet {name!r}") from None

    def __getitem__(self, name: str) -> Sheet:
        return self.sheet(name)

    def sheet_names(self) -> List[str]:
        return list(self.sheets)

    # ------------------------------------------------------- ComputeHost hooks

    def read_value(self, key: CellKey) -> Any:
        sheet_name, row, col = key
        sheet = self.sheets.get(sheet_name)
        if sheet is None:
            return None
        return sheet.value_at(row, col)

    def write_value(self, key: CellKey, value: Any) -> None:
        sheet_name, row, col = key
        cell = self.sheet(sheet_name).ensure_cell(CellAddress(row, col))
        cell.set_value(value)
        self._notify_cell_written(key, value)

    def write_error(self, key: CellKey, code: str) -> None:
        sheet_name, row, col = key
        cell = self.sheet(sheet_name).ensure_cell(CellAddress(row, col))
        cell.set_error(code)
        self._notify_cell_written(key, code)

    def call_extension(self, name: str, args: List[Any], at: CellKey) -> Any:
        upper = name.upper()
        if upper in ("DBSQL", "DBTABLE"):
            region = self.regions.region_at(at[0], at[1], at[2])
            if region is None or (
                region.context.anchor.row != at[1]
                or region.context.anchor.col != at[2]
            ):
                raise FormulaEvalError(
                    f"{upper} formula without a region at anchor", "#REF!"
                )
            value = region.refresh()
            self._notify_region_refreshed(region)
            return value
        raise FormulaEvalError(f"unknown function {name}", "#NAME?")

    # --------------------------------------------------------------- batching

    @contextlib.contextmanager
    def batch(self) -> Iterator[None]:
        """Group mutations so sync flushes once at the end."""
        self._batch_depth += 1
        try:
            yield
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self.auto_sync:
                self.sync.flush()

    def mark_region_stale(self, region) -> None:
        self.sync.mark_stale(region.context.region_id)
        if self._batch_depth == 0 and self.auto_sync:
            self.sync.flush()

    # ---------------------------------------------------------------- editing

    def _key(self, sheet_name: str, address: CellAddress) -> CellKey:
        return (sheet_name, address.row, address.col)

    def set(self, sheet_name: str, ref: RefLike, raw: Any) -> None:
        """Apply user input to a cell — the single entry point that routes
        between plain values, formulas, DataSpread constructs, and edits of
        database-backed regions."""
        sheet = self.sheet(sheet_name)
        address = ref if isinstance(ref, CellAddress) else CellAddress.parse(ref)
        key = self._key(sheet_name, address)

        region = self.regions.region_at(sheet_name, address.row, address.col)
        is_anchor = region is not None and (
            region.context.anchor.row == address.row
            and region.context.anchor.col == address.col
        )
        if region is not None and not is_anchor:
            if region.context.kind == "dbtable":
                with self.batch():
                    region.apply_edit(address.row, address.col, raw)
                    # The region suppresses its own sync refresh (it updates
                    # its cells in place), so announce the change here.
                    self._notify_region_refreshed(region)
                return
            raise RegionError(
                f"{address.to_a1()} is part of a DBSQL result and is read-only"
            )
        if is_anchor:
            # Replacing the construct: tear the old region down first.
            self.remove_region(region.context.region_id)

        # Row appended directly below a DBTABLE (the add-a-record idiom).
        if region is None and address.row > 0:
            above = self.regions.region_at(sheet_name, address.row - 1, address.col)
            if (
                above is not None
                and above.context.kind == "dbtable"
                and above.context.extent is not None
                and above.context.extent.end.row == address.row - 1
            ):
                with self.batch():
                    above.apply_edit(address.row, address.col, raw)
                    self._notify_region_refreshed(above)
                return

        if isinstance(raw, str) and raw.startswith("="):
            self._set_formula(sheet, key, address, raw)
            return
        cell = sheet.ensure_cell(address)
        if cell.is_formula:
            self.compute.unregister_formula(key)
        cell.set_input(raw)
        self._notify_cell_written(key, cell.value)
        with self.batch():
            self.compute.on_value_changed(key)

    def _set_formula(
        self, sheet: Sheet, key: CellKey, address: CellAddress, raw: str
    ) -> None:
        source = raw[1:]
        node = parse_formula(source)
        if isinstance(node, Call) and node.name in ("DBSQL", "DBTABLE"):
            if not (node.args and isinstance(node.args[0], Text)):
                raise FormulaSyntaxError(
                    f"{node.name} expects a quoted string argument"
                )
            argument = node.args[0].value
            if node.name == "DBSQL":
                self._install_dbsql(sheet.name, address, argument, raw)
            else:
                self._install_dbtable(sheet.name, address, argument, raw)
            return
        cell = sheet.ensure_cell(address)
        cell.set_input(raw)
        # Announce before recalc: even when the formula's value is computed
        # later (lazy mode, off-screen cell), observers must see that the
        # cell was written (the optimistic stale check keys off this).
        self._notify_cell_written(key, cell.value)
        with self.batch():
            self.compute.register_formula(key, source)

    def get(self, sheet_name: str, ref: RefLike) -> Any:
        """Current value (recomputing the cell first if it is dirty)."""
        address = ref if isinstance(ref, CellAddress) else CellAddress.parse(ref)
        return self.compute.demand_value(self._key(sheet_name, address))

    def get_range(self, sheet_name: str, ref: Union[str, RangeAddress]) -> List[List[Any]]:
        reference = ref if isinstance(ref, RangeAddress) else RangeAddress.parse(ref)
        return [
            [
                self.compute.demand_value((sheet_name, row, col))
                for col in range(reference.start.col, reference.end.col + 1)
            ]
            for row in range(reference.start.row, reference.end.row + 1)
        ]

    def display(self, sheet_name: str, ref: RefLike) -> str:
        self.get(sheet_name, ref)  # ensure fresh
        return self.sheet(sheet_name).display(
            ref if isinstance(ref, CellAddress) else CellAddress.parse(ref)
        )

    # ----------------------------------------------------- DataSpread constructs

    def dbsql(
        self,
        sheet_name: str,
        anchor: RefLike,
        sql: str,
        include_headers: bool = False,
    ) -> DBSQLRegion:
        """Install ``=DBSQL("<sql>")`` at ``anchor`` (Fig 2a)."""
        address = anchor if isinstance(anchor, CellAddress) else CellAddress.parse(anchor)
        return self._install_dbsql(
            sheet_name, address, sql, None, include_headers=include_headers
        )

    def _install_dbsql(
        self,
        sheet_name: str,
        address: CellAddress,
        sql: str,
        raw_formula: Optional[str],
        include_headers: bool = False,
    ) -> DBSQLRegion:
        sheet = self.sheet(sheet_name)
        region = DBSQLRegion(
            self,
            self.regions.new_id(),
            sheet_name,
            address,
            sql,
            include_headers=include_headers,
        )
        self.regions.add(region)
        cell = sheet.ensure_cell(address)
        escaped = sql.replace('"', '""')
        cell.set_input(raw_formula if raw_formula is not None else f'=DBSQL("{escaped}")')
        cell.region_id = region.context.region_id
        key = self._key(sheet_name, address)
        with self.batch():
            self.compute.register_formula(key, cell.formula)
            # Widen the anchor's precedents with the SQL-level references
            # (RANGEVALUE cells, RANGETABLE ranges).
            self.compute.graph.set_dependencies(
                key, region.precedent_cells, region.precedent_ranges
            )
            if not self.compute.eager:
                pass  # lazy mode: first refresh happens on demand/drain
        return region

    def dbtable(
        self,
        sheet_name: str,
        anchor: RefLike,
        table_name: str,
        include_headers: bool = True,
        window_rows: Optional[int] = None,
    ) -> DBTableRegion:
        """Install ``=DBTABLE("<table>")`` at ``anchor`` (Fig 2b import)."""
        address = anchor if isinstance(anchor, CellAddress) else CellAddress.parse(anchor)
        return self._install_dbtable(
            sheet_name,
            address,
            table_name,
            None,
            include_headers=include_headers,
            window_rows=window_rows,
        )

    def _install_dbtable(
        self,
        sheet_name: str,
        address: CellAddress,
        table_name: str,
        raw_formula: Optional[str],
        include_headers: bool = True,
        window_rows: Optional[int] = None,
    ) -> DBTableRegion:
        sheet = self.sheet(sheet_name)
        region = DBTableRegion(
            self,
            self.regions.new_id(),
            sheet_name,
            address,
            table_name,
            include_headers=include_headers,
            window_rows=window_rows,
        )
        self.regions.add(region)
        cell = sheet.ensure_cell(address)
        cell.set_input(
            raw_formula if raw_formula is not None else f'=DBTABLE("{table_name}")'
        )
        cell.region_id = region.context.region_id
        key = self._key(sheet_name, address)
        with self.batch():
            self.compute.register_formula(key, cell.formula)
        return region

    def remove_region(self, region_id: int) -> None:
        region = self.regions.get(region_id)
        if region is None:
            return
        anchor = region.context.anchor
        key = self._key(region.context.sheet, anchor)
        self.compute.unregister_formula(key)
        region.clear()
        self.regions.remove(region_id)

    def create_table_from_range(
        self,
        sheet_name: str,
        range_ref: Union[str, RangeAddress],
        table_name: str,
        primary_key: Optional[str] = None,
        layout: Optional[LayoutPolicy] = None,
        group_size: Optional[int] = None,
        window_rows: Optional[int] = None,
    ) -> Table:
        """Fig 2b export: turn a sheet range into a database table and
        replace the range with a live DBTABLE region."""
        reference = (
            range_ref if isinstance(range_ref, RangeAddress) else RangeAddress.parse(range_ref)
        )
        sheet = self.sheet(sheet_name)
        grid = self.get_range(sheet_name, reference)
        table = create_table_from_grid(
            self.database,
            table_name,
            grid,
            primary_key=primary_key,
            layout=layout,
            group_size=group_size,
            first_col_label=reference.start.col,
        )
        sheet.clear_range(reference)
        self._install_dbtable(
            sheet_name,
            reference.start,
            table_name,
            None,
            include_headers=True,
            window_rows=window_rows,
        )
        return table

    # ------------------------------------------------------------ database I/O

    def execute(self, sql: str, params: Sequence[Any] = ()) -> ResultSet:
        """Run SQL against the back-end; dependent regions refresh once the
        statement completes (Feature 3, back-end direction)."""
        with self.batch():
            return self.database.execute(sql, params)

    # ----------------------------------------------------------- window control

    def set_viewport(self, viewport: Viewport) -> None:
        self.viewport = viewport
        self.compute.set_visible_predicate(viewport.visible_predicate())

    def recalc_visible(self) -> int:
        return self.compute.recalc_visible()

    def background_step(self, budget: int = 32) -> int:
        return self.compute.background_step(budget)

    def recalc_all(self) -> int:
        return self.compute.drain()

    # ---------------------------------------------------------- structural edits

    def insert_rows(self, sheet_name: str, at: int, count: int = 1) -> None:
        self._structural_edit(sheet_name, "row", at, count)

    def delete_rows(self, sheet_name: str, at: int, count: int = 1) -> None:
        self._structural_edit(sheet_name, "row", at, -count)

    def insert_cols(self, sheet_name: str, at: int, count: int = 1) -> None:
        self._structural_edit(sheet_name, "col", at, count)

    def delete_cols(self, sheet_name: str, at: int, count: int = 1) -> None:
        self._structural_edit(sheet_name, "col", at, -count)

    def _structural_edit(self, sheet_name: str, axis: str, at: int, count: int) -> None:
        """Insert (count>0) or delete (count<0) rows/columns.

        The positional-mapping fast path: the sheet's cell store splices
        its key space (zero cells move), and only formulas whose references
        actually intersect the shifted half-space — found through the
        dependency graph's tile-bucketed subscriptions — are rewritten and
        reparsed.  Formulas that merely *live* below the edit are re-keyed
        (an O(1) dictionary move each), not reparsed, and nothing else is
        recomputed.  Logical work is proportional to the affected set, not
        the workbook."""
        sheet = self.sheet(sheet_name)
        # Regions: refuse edits that cut through a region; shift those below/right.
        for region in self.regions.regions_on_sheet(sheet_name):
            extent = region.context.extent
            if extent is None:
                continue
            lo = extent.start.row if axis == "row" else extent.start.col
            hi = extent.end.row if axis == "row" else extent.end.col
            if count < 0:
                removed_lo, removed_hi = at, at - count - 1
                if removed_lo <= hi and removed_hi >= lo:
                    raise RegionError(
                        f"structural delete intersects region "
                        f"{region.context.region_id} ({extent.to_a1()})"
                    )
            elif lo < at <= hi:
                raise RegionError(
                    f"structural insert splits region "
                    f"{region.context.region_id} ({extent.to_a1()})"
                )
        # 1. formulas whose references intersect the shifted half-space —
        #    resolved against the *pre-splice* graph, under their old keys.
        affected = {
            key
            for key in self.compute.graph.dependents_intersecting(sheet_name, axis, at)
            if self.compute.has_formula(key)
        }
        # 2. splice the key space: zero stored cells move; deletes purge
        #    only the cells that occupied the removed slice.
        removed = -count if count < 0 else 0
        if axis == "row":
            sheet.insert_rows(at, count) if count > 0 else sheet.delete_rows(at, removed)
        else:
            sheet.insert_cols(at, count) if count > 0 else sheet.delete_cols(at, removed)
        # 3. re-anchor regions
        delta = count
        for region in self.regions.regions_on_sheet(sheet_name):
            extent = region.context.extent
            anchor = region.context.anchor
            coordinate = anchor.row if axis == "row" else anchor.col
            if coordinate >= at:
                d_row = delta if axis == "row" else 0
                d_col = delta if axis == "col" else 0
                region.context.anchor = anchor.translate(d_row, d_col)
                if extent is not None:
                    region.context.extent = extent.translate(d_row, d_col)
        # 4. re-key formulas located in the shifted half-space of this sheet
        #    (their cells answered to new logical coordinates the moment the
        #    store spliced) — a dictionary move, not a reparse.
        mapping: Dict[CellKey, CellKey] = {}
        doomed: List[CellKey] = []
        for key in self.compute.formula_keys_on_sheet(sheet_name):
            coordinate = key[1] if axis == "row" else key[2]
            if coordinate < at:
                continue
            if count < 0 and coordinate < at + removed:
                doomed.append(key)  # the formula's cell was deleted
            elif axis == "row":
                mapping[key] = (key[0], key[1] + delta, key[2])
            else:
                mapping[key] = (key[0], key[1], key[2] + delta)
        for key in doomed:
            affected.discard(key)
            self.compute.drop_formula(key)
        self.compute.rekey_formulas(mapping)
        affected = {mapping.get(key, key) for key in affected}
        # 5. rewrite only the affected formulas (the ≤|affected| reparses a
        #    structural edit now costs), deferring recomputation to one
        #    drain at the end.
        was_eager = self.compute.eager
        self.compute.eager = False
        try:
            for key in sorted(affected):
                owner = self.sheet(key[0])
                cell = owner.cell_at(key[1], key[2])
                if cell is None or not cell.is_formula:
                    continue
                if cell.region_id is not None:
                    # DBSQL/DBTABLE anchor: references live inside the SQL
                    # string and are not rewritten; re-render because a
                    # precedent cell moved under it.
                    self.compute.invalidate_formula(key)
                    continue
                try:
                    cell.formula = adjust_formula_for_structural_edit(
                        cell.formula, axis, at, count, sheet_name, key[0]
                    )
                except ReferenceDeleted:
                    cell.set_error("#REF!")
                    cell.formula = None
                    self.compute.drop_formula(key)
                    self._notify_cell_written(key, cell.value)
                    continue
                self.compute.register_formula(key, cell.formula)
        finally:
            self.compute.eager = was_eager
        with self.batch():
            if self.compute.eager:
                self.compute.drain()

    # ----------------------------------------------------------------- stats

    def stats_summary(self) -> Dict[str, Any]:
        return {
            "sheets": len(self.sheets),
            "regions": len(self.regions),
            "formulas": self.compute.n_formulas,
            "compute": self.compute.stats,
            "sync": self.sync.stats,
            "io": self.database.io_stats,
        }
