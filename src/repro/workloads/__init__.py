"""Synthetic workloads: datasets and interaction traces.

The paper demonstrates on an IMDb-style movie database (Fig 2a) and
motivates with a course-grades scenario (§1).  Both are regenerated here
synthetically with deterministic seeds, plus the interaction traces
(scrolls, edits) the benchmarks replay.
"""

from repro.workloads.datasets import (
    MovieData,
    generate_movie_data,
    load_movie_database,
    GradesData,
    generate_grades_data,
    load_grades_database,
)
from repro.workloads.traces import (
    sequential_scroll_trace,
    random_jump_trace,
    mixed_scroll_trace,
    random_edit_trace,
    SCAN_HEAVY_MIX,
    UPDATE_HEAVY_MIX,
    layout_op_trace,
    alternating_layout_trace,
)

__all__ = [
    "MovieData",
    "generate_movie_data",
    "load_movie_database",
    "GradesData",
    "generate_grades_data",
    "load_grades_database",
    "sequential_scroll_trace",
    "random_jump_trace",
    "mixed_scroll_trace",
    "random_edit_trace",
    "SCAN_HEAVY_MIX",
    "UPDATE_HEAVY_MIX",
    "layout_op_trace",
    "alternating_layout_trace",
]
