"""Deterministic synthetic datasets.

* **Movies** — the Fig 2a schema: ``MOVIES(movieid, title, year)``,
  ``ACTORS(actorid, name)``, ``MOVIES2ACTORS(movieid, actorid)``.  The
  paper used IMDb-style demo data we don't have; synthetic titles/names
  with the same shape exercise identical code paths (see DESIGN.md
  substitutions).
* **Grades** — the §1 motivating scenario: one sheet of assignment scores
  (rows 1–100, columns 1–5 in the paper; size is a parameter here) and one
  of demographics, joined on student id.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine.database import Database
from repro.engine.schema import TableSchema
from repro.engine.store import LayoutPolicy
from repro.engine.types import DBType

__all__ = [
    "MovieData",
    "generate_movie_data",
    "load_movie_database",
    "GradesData",
    "generate_grades_data",
    "load_grades_database",
]

_TITLE_WORDS = (
    "Dark Silent Broken Golden Final Lost Hidden Distant Burning Quiet "
    "Electric Savage Crimson Frozen Endless".split()
)
_TITLE_NOUNS = (
    "River City Empire Garden Horizon Signal Harvest Mirror Engine Valley "
    "Voyage Archive Covenant Paradox Meridian".split()
)
_FIRST_NAMES = (
    "Ada Boris Carla Dmitri Elena Farid Greta Hugo Ines Jonas Keiko Luis "
    "Mara Nikhil Oksana Pavel Quinn Rosa Stefan Tuya".split()
)
_LAST_NAMES = (
    "Alvarez Brandt Chen Duarte Eriksen Fontaine Grigoryan Hassan Ito "
    "Jensen Kovacs Lindqvist Moreau Novak Okafor Petrov Quispe Rossi "
    "Sato Tanaka".split()
)


@dataclass
class MovieData:
    movies: List[Tuple[int, str, int]]
    actors: List[Tuple[int, str]]
    movies2actors: List[Tuple[int, int]]


def generate_movie_data(
    n_movies: int = 1000,
    n_actors: int = 500,
    links_per_movie: int = 3,
    seed: int = 7,
) -> MovieData:
    rng = random.Random(seed)
    movies = [
        (
            movie_id,
            f"{rng.choice(_TITLE_WORDS)} {rng.choice(_TITLE_NOUNS)} {movie_id}",
            rng.randint(1950, 2015),
        )
        for movie_id in range(1, n_movies + 1)
    ]
    actors = [
        (actor_id, f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)} {actor_id}")
        for actor_id in range(1, n_actors + 1)
    ]
    links = []
    for movie_id in range(1, n_movies + 1):
        cast = rng.sample(range(1, n_actors + 1), min(links_per_movie, n_actors))
        links.extend((movie_id, actor_id) for actor_id in cast)
    return MovieData(movies, actors, links)


def load_movie_database(
    data: Optional[MovieData] = None,
    database: Optional[Database] = None,
    layout: Optional[LayoutPolicy] = None,
    **generate_kwargs,
) -> Database:
    """Create and populate the three Fig 2a tables."""
    if data is None:
        data = generate_movie_data(**generate_kwargs)
    if database is None:
        database = Database()
    movies = database.create_table(
        "movies",
        TableSchema.from_pairs(
            [("movieid", DBType.INTEGER), ("title", DBType.TEXT), ("year", DBType.INTEGER)],
            primary_key="movieid",
        ),
        layout=layout,
    )
    actors = database.create_table(
        "actors",
        TableSchema.from_pairs(
            [("actorid", DBType.INTEGER), ("name", DBType.TEXT)],
            primary_key="actorid",
        ),
        layout=layout,
    )
    links = database.create_table(
        "movies2actors",
        TableSchema.from_pairs(
            [("movieid", DBType.INTEGER), ("actorid", DBType.INTEGER)]
        ),
        layout=layout,
    )
    for row in data.movies:
        movies.insert(row)
    for row in data.actors:
        actors.insert(row)
    for row in data.movies2actors:
        links.insert(row)
    return database


@dataclass
class GradesData:
    #: (student_id, a1..a5 scores, grade)
    grades: List[Tuple]
    #: (student_id, name, level, age)
    demographics: List[Tuple]
    grade_header: List[str]
    demo_header: List[str]


_LEVELS = ("undergrad", "MS", "PhD")


def generate_grades_data(n_students: int = 100, seed: int = 13) -> GradesData:
    rng = random.Random(seed)
    grades = []
    demographics = []
    for student_id in range(1, n_students + 1):
        scores = [rng.randint(40, 100) for _ in range(5)]
        average = sum(scores) / len(scores)
        grade = (
            "A" if average >= 90 else
            "B" if average >= 75 else
            "C" if average >= 60 else "D"
        )
        grades.append((student_id, *scores, grade))
        demographics.append(
            (
                student_id,
                f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}",
                rng.choice(_LEVELS),
                rng.randint(18, 35),
            )
        )
    return GradesData(
        grades,
        demographics,
        ["student_id", "a1", "a2", "a3", "a4", "a5", "grade"],
        ["student_id", "name", "level", "age"],
    )


def load_grades_database(
    data: Optional[GradesData] = None,
    database: Optional[Database] = None,
    layout: Optional[LayoutPolicy] = None,
    **generate_kwargs,
) -> Database:
    if data is None:
        data = generate_grades_data(**generate_kwargs)
    if database is None:
        database = Database()
    grades = database.create_table(
        "grades",
        TableSchema.from_pairs(
            [
                ("student_id", DBType.INTEGER),
                ("a1", DBType.INTEGER),
                ("a2", DBType.INTEGER),
                ("a3", DBType.INTEGER),
                ("a4", DBType.INTEGER),
                ("a5", DBType.INTEGER),
                ("grade", DBType.TEXT),
            ],
            primary_key="student_id",
        ),
        layout=layout,
    )
    demographics = database.create_table(
        "demographics",
        TableSchema.from_pairs(
            [
                ("student_id", DBType.INTEGER),
                ("name", DBType.TEXT),
                ("level", DBType.TEXT),
                ("age", DBType.INTEGER),
            ],
            primary_key="student_id",
        ),
        layout=layout,
    )
    for row in data.grades:
        grades.insert(row)
    for row in data.demographics:
        demographics.insert(row)
    return database
