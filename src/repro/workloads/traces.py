"""Interaction traces: scroll and edit sequences the benchmarks replay.

All traces are deterministic given a seed, so benchmark runs are
comparable across systems and across time.
"""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = [
    "sequential_scroll_trace",
    "random_jump_trace",
    "mixed_scroll_trace",
    "random_edit_trace",
]


def sequential_scroll_trace(
    n_rows: int, window: int, steps: int, start: int = 0
) -> List[int]:
    """Page-down panning: the classic "scan through the whole table"
    interaction the paper's §1 windowing story targets."""
    positions = []
    position = start
    for _ in range(steps):
        positions.append(position)
        position += window
        if position + window > n_rows:
            position = 0
    return positions


def random_jump_trace(n_rows: int, window: int, steps: int, seed: int = 21) -> List[int]:
    """Scrollbar drags to random offsets (worst case for caching)."""
    rng = random.Random(seed)
    upper = max(n_rows - window, 1)
    return [rng.randrange(upper) for _ in range(steps)]


def mixed_scroll_trace(
    n_rows: int, window: int, steps: int, jump_probability: float = 0.2, seed: int = 22
) -> List[int]:
    """Mostly sequential panning with occasional jumps — a realistic
    browse pattern."""
    rng = random.Random(seed)
    positions = []
    position = 0
    upper = max(n_rows - window, 1)
    for _ in range(steps):
        positions.append(position)
        if rng.random() < jump_probability:
            position = rng.randrange(upper)
        else:
            position = (position + window) % upper
    return positions


def random_edit_trace(
    n_rows: int, n_cols: int, steps: int, seed: int = 23
) -> List[Tuple[int, int, int]]:
    """(row, col, new_int_value) triples for region-edit benchmarks."""
    rng = random.Random(seed)
    return [
        (rng.randrange(n_rows), rng.randrange(n_cols), rng.randint(0, 10_000))
        for _ in range(steps)
    ]
