"""Interaction traces: scroll and edit sequences the benchmarks replay.

All traces are deterministic given a seed, so benchmark runs are
comparable across systems and across time.
"""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = [
    "sequential_scroll_trace",
    "random_jump_trace",
    "mixed_scroll_trace",
    "random_edit_trace",
    "SCAN_HEAVY_MIX",
    "UPDATE_HEAVY_MIX",
    "layout_op_trace",
    "alternating_layout_trace",
]


def _advance(position: int, window: int, n_rows: int) -> int:
    """Next page-down position, visiting the final partial window.

    The last full-window start is ``n_rows - window``; a plain
    ``position + window > n_rows → 0`` wrap (the old behaviour) skipped
    the tail rows of any table whose height is not a multiple of the
    window, so "scan the whole table" traces silently never showed them.
    """
    position += window
    if position >= n_rows:
        return 0
    if position + window > n_rows:
        return max(n_rows - window, 0)
    return position


def sequential_scroll_trace(
    n_rows: int, window: int, steps: int, start: int = 0
) -> List[int]:
    """Page-down panning: the classic "scan through the whole table"
    interaction the paper's §1 windowing story targets.  Every pass
    visits the final partial window before wrapping, so the trace covers
    all ``n_rows`` rows."""
    positions = []
    position = start
    for _ in range(steps):
        positions.append(position)
        position = _advance(position, window, n_rows)
    return positions


def random_jump_trace(n_rows: int, window: int, steps: int, seed: int = 21) -> List[int]:
    """Scrollbar drags to random offsets (worst case for caching)."""
    rng = random.Random(seed)
    upper = max(n_rows - window, 1)
    return [rng.randrange(upper) for _ in range(steps)]


def mixed_scroll_trace(
    n_rows: int, window: int, steps: int, jump_probability: float = 0.2, seed: int = 22
) -> List[int]:
    """Mostly sequential panning with occasional jumps — a realistic
    browse pattern.  Jumps may land on any valid window start (including
    the last, ``n_rows - window``), and sequential panning visits the
    final partial window instead of wrapping past it (the old
    ``% (n_rows - window)`` arithmetic excluded the tail rows)."""
    rng = random.Random(seed)
    positions = []
    position = 0
    upper = max(n_rows - window + 1, 1)
    for _ in range(steps):
        positions.append(position)
        if rng.random() < jump_probability:
            position = rng.randrange(upper)
        else:
            position = _advance(position, window, n_rows)
    return positions


# -- table-operation traces for layout benchmarks ---------------------------
#
# Logical operations against one table, abstract enough to replay against
# any physical layout: ("scan_col", col), ("point_read", token),
# ("col_update", token, col, value), ("insert",).  Row tokens are resolved
# ``token % n_rows`` at replay time so the trace stays valid as inserts
# grow the table.

#: Analytical phase: dominated by column scans over the leading columns.
SCAN_HEAVY_MIX = {"scan_col": 0.70, "point_read": 0.10, "col_update": 0.10, "insert": 0.10}

#: Transactional phase: point reads, single-column updates and inserts.
UPDATE_HEAVY_MIX = {"scan_col": 0.02, "point_read": 0.48, "col_update": 0.25, "insert": 0.25}


def layout_op_trace(
    n_cols: int,
    steps: int,
    mix: dict,
    seed: int = 24,
    hot_cols: int = 1,
) -> List[Tuple]:
    """A weighted stream of table operations (deterministic per seed).

    ``mix`` maps op kind to weight; column scans target the first
    ``hot_cols`` columns (the "analysts keep charting the same measures"
    pattern that makes narrow chains pay off)."""
    rng = random.Random(seed)
    kinds = sorted(mix)
    weights = [mix[kind] for kind in kinds]
    ops: List[Tuple] = []
    for _ in range(steps):
        kind = rng.choices(kinds, weights)[0]
        if kind == "scan_col":
            ops.append(("scan_col", rng.randrange(max(1, min(hot_cols, n_cols)))))
        elif kind == "point_read":
            ops.append(("point_read", rng.randrange(1 << 30)))
        elif kind == "col_update":
            ops.append(
                ("col_update", rng.randrange(1 << 30), rng.randrange(n_cols), rng.randint(0, 10_000))
            )
        else:
            ops.append(("insert",))
    return ops


def alternating_layout_trace(
    n_cols: int,
    phase_length: int,
    n_phases: int,
    seed: int = 25,
    hot_cols: int = 1,
) -> List[Tuple]:
    """Scan-heavy and update-heavy phases interleaved — the HTAP mix
    where no *static* layout wins and adaptivity pays."""
    ops: List[Tuple] = []
    for phase in range(n_phases):
        mix = SCAN_HEAVY_MIX if phase % 2 == 0 else UPDATE_HEAVY_MIX
        ops.extend(
            layout_op_trace(n_cols, phase_length, mix, seed=seed + phase, hot_cols=hot_cols)
        )
    return ops


def random_edit_trace(
    n_rows: int, n_cols: int, steps: int, seed: int = 23
) -> List[Tuple[int, int, int]]:
    """(row, col, new_int_value) triples for region-edit benchmarks."""
    rng = random.Random(seed)
    return [
        (rng.randrange(n_rows), rng.randrange(n_cols), rng.randint(0, 10_000))
        for _ in range(steps)
    ]
