"""Two-dimensional indexes over spreadsheet cell blocks.

Paper §3, *Interface Storage Manager*: "the component groups the cells
together by proximity and splits the groups into data blocks ... the blocks
are further indexed by a two-dimensional indexing method."

Two structures are provided, benchmarked against each other in E8:

* :class:`GridIndex` — the cells plane is partitioned into fixed-size tiles;
  a hash map keyed by tile coordinate gives O(1) point access and
  O(tiles-overlapping-range) range queries.  This is the default because
  spreadsheet edits cluster strongly.
* :class:`QuadTree` — an adaptive region quadtree over (row, col) points,
  better when occupied cells are extremely skewed (a few dense islands on a
  vast sheet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["GridIndex", "QuadTree"]


class GridIndex:
    """Fixed-tile spatial hash: (row, col) → payload, tile-bucketed."""

    def __init__(self, tile_rows: int = 64, tile_cols: int = 16):
        if tile_rows <= 0 or tile_cols <= 0:
            raise ValueError("tile dimensions must be positive")
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self._tiles: Dict[Tuple[int, int], Dict[Tuple[int, int], Any]] = {}
        self._count = 0

    def _tile_key(self, row: int, col: int) -> Tuple[int, int]:
        return (row // self.tile_rows, col // self.tile_cols)

    def __len__(self) -> int:
        return self._count

    @property
    def n_tiles(self) -> int:
        return len(self._tiles)

    def put(self, row: int, col: int, payload: Any) -> None:
        tile = self._tiles.setdefault(self._tile_key(row, col), {})
        if (row, col) not in tile:
            self._count += 1
        tile[(row, col)] = payload

    def get(self, row: int, col: int, default: Any = None) -> Any:
        tile = self._tiles.get(self._tile_key(row, col))
        if tile is None:
            return default
        return tile.get((row, col), default)

    def remove(self, row: int, col: int) -> bool:
        key = self._tile_key(row, col)
        tile = self._tiles.get(key)
        if tile is None or (row, col) not in tile:
            return False
        del tile[(row, col)]
        self._count -= 1
        if not tile:
            del self._tiles[key]
        return True

    def query_range(
        self, top: int, left: int, bottom: int, right: int
    ) -> Iterator[Tuple[int, int, Any]]:
        """All occupied cells in the inclusive rectangle, row-major order."""
        results: List[Tuple[int, int, Any]] = []
        tile_top = top // self.tile_rows
        tile_bottom = bottom // self.tile_rows
        tile_left = left // self.tile_cols
        tile_right = right // self.tile_cols
        n_candidate_tiles = (tile_bottom - tile_top + 1) * (tile_right - tile_left + 1)
        if n_candidate_tiles <= len(self._tiles):
            candidates = (
                (tr, tc)
                for tr in range(tile_top, tile_bottom + 1)
                for tc in range(tile_left, tile_right + 1)
            )
        else:
            candidates = (
                key
                for key in self._tiles
                if tile_top <= key[0] <= tile_bottom and tile_left <= key[1] <= tile_right
            )
        for key in candidates:
            tile = self._tiles.get(key)
            if not tile:
                continue
            for (row, col), payload in tile.items():
                if top <= row <= bottom and left <= col <= right:
                    results.append((row, col, payload))
        results.sort(key=lambda item: (item[0], item[1]))
        return iter(results)

    def tiles_overlapping(self, top: int, left: int, bottom: int, right: int) -> int:
        """How many *occupied* tiles a range query touches (E8 metric)."""
        tile_top, tile_bottom = top // self.tile_rows, bottom // self.tile_rows
        tile_left, tile_right = left // self.tile_cols, right // self.tile_cols
        return sum(
            1
            for key in self._tiles
            if tile_top <= key[0] <= tile_bottom and tile_left <= key[1] <= tile_right
        )

    def items(self) -> Iterator[Tuple[int, int, Any]]:
        for tile in self._tiles.values():
            for (row, col), payload in tile.items():
                yield row, col, payload


@dataclass
class _QuadNode:
    top: int
    left: int
    size: int  # the node covers [top, top+size) x [left, left+size)
    points: Optional[Dict[Tuple[int, int], Any]] = None
    children: Optional[List[Optional["_QuadNode"]]] = None


class QuadTree:
    """Adaptive region quadtree over sparse (row, col) points.

    The root region grows by doubling whenever a point lands outside, so
    callers never specify bounds up front (sheets are unbounded).
    """

    LEAF_CAPACITY = 32
    MIN_SIZE = 8

    def __init__(self):
        self._root: Optional[_QuadNode] = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- growth ----------------------------------------------------------

    def _ensure_covers(self, row: int, col: int) -> None:
        # The root is always anchored at the origin (coordinates are
        # non-negative), so growth simply doubles toward bottom-right with
        # the old root becoming the top-left quadrant — geometry stays
        # aligned by construction.
        if self._root is None:
            self._root = _QuadNode(0, 0, 16, points={})
        while not self._covers(self._root, row, col):
            old = self._root
            new_size = old.size * 2
            if new_size > 2 ** 42:
                raise ValueError("quadtree grew unreasonably large")
            root = _QuadNode(0, 0, new_size, children=[None] * 4)
            root.children[0] = old
            self._root = root

    @staticmethod
    def _covers(node: _QuadNode, row: int, col: int) -> bool:
        return (
            node.top <= row < node.top + node.size
            and node.left <= col < node.left + node.size
        )

    @staticmethod
    def _quadrant_of(node: _QuadNode, row: int, col: int) -> int:
        half = node.size // 2
        index = 0
        if row >= node.top + half:
            index += 2
        if col >= node.left + half:
            index += 1
        return index

    @staticmethod
    def _child_region(node: _QuadNode, quadrant: int) -> Tuple[int, int, int]:
        half = node.size // 2
        top = node.top + (half if quadrant >= 2 else 0)
        left = node.left + (half if quadrant % 2 == 1 else 0)
        return top, left, half

    # -- mutation -----------------------------------------------------------

    def put(self, row: int, col: int, payload: Any) -> None:
        if row < 0 or col < 0:
            raise ValueError("coordinates must be non-negative")
        self._ensure_covers(row, col)
        self._count += self._put(self._root, row, col, payload)

    def _put(self, node: _QuadNode, row: int, col: int, payload: Any) -> int:
        if node.points is not None:  # leaf
            added = 0 if (row, col) in node.points else 1
            node.points[(row, col)] = payload
            if len(node.points) > self.LEAF_CAPACITY and node.size > self.MIN_SIZE:
                points = node.points
                node.points = None
                node.children = [None] * 4
                for (p_row, p_col), p_payload in points.items():
                    self._put_into_child(node, p_row, p_col, p_payload)
            return added
        return self._put_into_child(node, row, col, payload)

    def _put_into_child(self, node: _QuadNode, row: int, col: int, payload: Any) -> int:
        quadrant = self._quadrant_of(node, row, col)
        child = node.children[quadrant]
        if child is None:
            top, left, size = self._child_region(node, quadrant)
            child = _QuadNode(top, left, size, points={})
            node.children[quadrant] = child
        return self._put(child, row, col, payload)

    def get(self, row: int, col: int, default: Any = None) -> Any:
        node = self._root
        while node is not None:
            if not self._covers(node, row, col):
                return default
            if node.points is not None:
                return node.points.get((row, col), default)
            node = node.children[self._quadrant_of(node, row, col)]
        return default

    def remove(self, row: int, col: int) -> bool:
        node = self._root
        while node is not None:
            if not self._covers(node, row, col):
                return False
            if node.points is not None:
                if (row, col) in node.points:
                    del node.points[(row, col)]
                    self._count -= 1
                    return True
                return False
            node = node.children[self._quadrant_of(node, row, col)]
        return False

    # -- queries ---------------------------------------------------------------

    def query_range(
        self, top: int, left: int, bottom: int, right: int
    ) -> Iterator[Tuple[int, int, Any]]:
        results: List[Tuple[int, int, Any]] = []

        def rec(node: Optional[_QuadNode]) -> None:
            if node is None:
                return
            if (
                node.top > bottom
                or node.top + node.size - 1 < top
                or node.left > right
                or node.left + node.size - 1 < left
            ):
                return
            if node.points is not None:
                for (row, col), payload in node.points.items():
                    if top <= row <= bottom and left <= col <= right:
                        results.append((row, col, payload))
                return
            for child in node.children:
                rec(child)

        rec(self._root)
        results.sort(key=lambda item: (item[0], item[1]))
        return iter(results)

    def items(self) -> Iterator[Tuple[int, int, Any]]:
        return self.query_range(0, 0, 2 ** 41, 2 ** 41)
