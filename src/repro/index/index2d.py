"""Two-dimensional indexes over spreadsheet cell blocks.

Paper §3, *Interface Storage Manager*: "the component groups the cells
together by proximity and splits the groups into data blocks ... the blocks
are further indexed by a two-dimensional indexing method."

Two structures are provided, benchmarked against each other in E8:

* :class:`GridIndex` — the cells plane is partitioned into fixed-size tiles;
  a hash map keyed by tile coordinate gives O(1) point access and
  O(tiles-overlapping-range) range queries.  This is the default because
  spreadsheet edits cluster strongly.
* :class:`QuadTree` — an adaptive region quadtree over (row, col) points,
  better when occupied cells are extremely skewed (a few dense islands on a
  vast sheet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["GridIndex", "QuadTree"]


class GridIndex:
    """Fixed-tile spatial hash: (row, col) → payload, tile-bucketed."""

    def __init__(self, tile_rows: int = 64, tile_cols: int = 16):
        if tile_rows <= 0 or tile_cols <= 0:
            raise ValueError("tile dimensions must be positive")
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self._tiles: Dict[Tuple[int, int], Dict[Tuple[int, int], Any]] = {}
        # Per-tile bounding boxes [min_row, min_col, max_row, max_col]:
        # the metadata that lets used_bounds-style probes answer from
        # tile summaries instead of scanning cells.  Kept exact: puts
        # expand, removes shrink-by-rescan only when an extreme cell left.
        self._bounds: Dict[Tuple[int, int], List[int]] = {}
        self._count = 0

    def _tile_key(self, row: int, col: int) -> Tuple[int, int]:
        return (row // self.tile_rows, col // self.tile_cols)

    def __len__(self) -> int:
        return self._count

    @property
    def n_tiles(self) -> int:
        return len(self._tiles)

    def put(self, row: int, col: int, payload: Any) -> None:
        key = self._tile_key(row, col)
        tile = self._tiles.setdefault(key, {})
        if (row, col) not in tile:
            self._count += 1
        tile[(row, col)] = payload
        bounds = self._bounds.get(key)
        if bounds is None:
            self._bounds[key] = [row, col, row, col]
        else:
            if row < bounds[0]:
                bounds[0] = row
            if col < bounds[1]:
                bounds[1] = col
            if row > bounds[2]:
                bounds[2] = row
            if col > bounds[3]:
                bounds[3] = col

    def get(self, row: int, col: int, default: Any = None) -> Any:
        tile = self._tiles.get(self._tile_key(row, col))
        if tile is None:
            return default
        return tile.get((row, col), default)

    def remove(self, row: int, col: int) -> bool:
        key = self._tile_key(row, col)
        tile = self._tiles.get(key)
        if tile is None or (row, col) not in tile:
            return False
        del tile[(row, col)]
        self._count -= 1
        if not tile:
            del self._tiles[key]
            del self._bounds[key]
            return True
        bounds = self._bounds[key]
        if row in (bounds[0], bounds[2]) or col in (bounds[1], bounds[3]):
            rows = [r for r, _ in tile]
            cols = [c for _, c in tile]
            bounds[0], bounds[1] = min(rows), min(cols)
            bounds[2], bounds[3] = max(rows), max(cols)
        return True

    def query_range(
        self, top: int, left: int, bottom: int, right: int
    ) -> Iterator[Tuple[int, int, Any]]:
        """All occupied cells in the inclusive rectangle, row-major order."""
        results: List[Tuple[int, int, Any]] = []
        tile_top = top // self.tile_rows
        tile_bottom = bottom // self.tile_rows
        tile_left = left // self.tile_cols
        tile_right = right // self.tile_cols
        n_candidate_tiles = (tile_bottom - tile_top + 1) * (tile_right - tile_left + 1)
        if n_candidate_tiles <= len(self._tiles):
            candidates = (
                (tr, tc)
                for tr in range(tile_top, tile_bottom + 1)
                for tc in range(tile_left, tile_right + 1)
            )
        else:
            candidates = (
                key
                for key in self._tiles
                if tile_top <= key[0] <= tile_bottom and tile_left <= key[1] <= tile_right
            )
        for key in candidates:
            tile = self._tiles.get(key)
            if not tile:
                continue
            for (row, col), payload in tile.items():
                if top <= row <= bottom and left <= col <= right:
                    results.append((row, col, payload))
        results.sort(key=lambda item: (item[0], item[1]))
        return iter(results)

    def tiles_overlapping(self, top: int, left: int, bottom: int, right: int) -> int:
        """How many *occupied* tiles a range query touches (E8 metric)."""
        tile_top, tile_bottom = top // self.tile_rows, bottom // self.tile_rows
        tile_left, tile_right = left // self.tile_cols, right // self.tile_cols
        return sum(
            1
            for key in self._tiles
            if tile_top <= key[0] <= tile_bottom and tile_left <= key[1] <= tile_right
        )

    def items(self) -> Iterator[Tuple[int, int, Any]]:
        for tile in self._tiles.values():
            for (row, col), payload in tile.items():
                yield row, col, payload

    # -- bounds from tile metadata ----------------------------------------

    def _extreme_in(
        self, axis: int, lo: int, hi: int, smallest: bool
    ) -> Optional[int]:
        """Extreme occupied coordinate on ``axis`` (0=row, 1=col) within
        ``[lo, hi]``.  One pass over the tile directory groups tiles by
        stripe; the extreme stripe is then answered from the per-tile
        bounding boxes — cells are only inspected in *boundary* tiles
        whose bounds straddle the interval edge.  Only a boundary stripe
        with no in-interval cells forces a second stripe."""
        tile_span = self.tile_rows if axis == 0 else self.tile_cols
        stripe_lo, stripe_hi = lo // tile_span, hi // tile_span
        by_stripe: Dict[int, List[Tuple[Tuple[int, int], List[int]]]] = {}
        for key, bounds in self._bounds.items():
            stripe = key[axis]
            if stripe_lo <= stripe <= stripe_hi:
                by_stripe.setdefault(stripe, []).append((key, bounds))
        for stripe in sorted(by_stripe, reverse=not smallest):
            # The best any cell in this stripe can do:
            limit = max(lo, stripe * tile_span) if smallest else min(
                hi, stripe * tile_span + tile_span - 1
            )
            best: Optional[int] = None
            for key, bounds in by_stripe[stripe]:
                tile_lo, tile_hi = bounds[axis], bounds[axis + 2]
                if tile_hi < lo or tile_lo > hi:
                    continue  # metadata says: nothing in the interval
                if lo <= tile_lo and tile_hi <= hi:
                    candidate = tile_lo if smallest else tile_hi  # metadata only
                else:
                    matches = [
                        coords[axis]
                        for coords in self._tiles[key]
                        if lo <= coords[axis] <= hi
                    ]
                    if not matches:
                        continue
                    candidate = min(matches) if smallest else max(matches)
                if best is None or (candidate < best if smallest else candidate > best):
                    best = candidate
                    if best == limit:
                        return best
            if best is not None:
                return best
        return None

    def extreme_row_in(self, lo: int, hi: int, smallest: bool = True) -> Optional[int]:
        """Smallest (or largest) occupied row within rows ``[lo, hi]``,
        derived from tile metadata — see :meth:`_extreme_in`."""
        return self._extreme_in(0, lo, hi, smallest)

    def extreme_col_in(self, lo: int, hi: int, smallest: bool = True) -> Optional[int]:
        """Column-axis twin of :meth:`extreme_row_in`."""
        return self._extreme_in(1, lo, hi, smallest)


@dataclass
class _QuadNode:
    top: int
    left: int
    size: int  # the node covers [top, top+size) x [left, left+size)
    points: Optional[Dict[Tuple[int, int], Any]] = None
    children: Optional[List[Optional["_QuadNode"]]] = None


class QuadTree:
    """Adaptive region quadtree over sparse (row, col) points.

    The root region grows by doubling whenever a point lands outside, so
    callers never specify bounds up front (sheets are unbounded).
    """

    LEAF_CAPACITY = 32
    MIN_SIZE = 8

    def __init__(self):
        self._root: Optional[_QuadNode] = None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # -- growth ----------------------------------------------------------

    def _ensure_covers(self, row: int, col: int) -> None:
        # The root is always anchored at the origin (coordinates are
        # non-negative), so growth simply doubles toward bottom-right with
        # the old root becoming the top-left quadrant — geometry stays
        # aligned by construction.
        if self._root is None:
            self._root = _QuadNode(0, 0, 16, points={})
        while not self._covers(self._root, row, col):
            old = self._root
            new_size = old.size * 2
            if new_size > 2 ** 42:
                raise ValueError("quadtree grew unreasonably large")
            root = _QuadNode(0, 0, new_size, children=[None] * 4)
            root.children[0] = old
            self._root = root

    @staticmethod
    def _covers(node: _QuadNode, row: int, col: int) -> bool:
        return (
            node.top <= row < node.top + node.size
            and node.left <= col < node.left + node.size
        )

    @staticmethod
    def _quadrant_of(node: _QuadNode, row: int, col: int) -> int:
        half = node.size // 2
        index = 0
        if row >= node.top + half:
            index += 2
        if col >= node.left + half:
            index += 1
        return index

    @staticmethod
    def _child_region(node: _QuadNode, quadrant: int) -> Tuple[int, int, int]:
        half = node.size // 2
        top = node.top + (half if quadrant >= 2 else 0)
        left = node.left + (half if quadrant % 2 == 1 else 0)
        return top, left, half

    # -- mutation -----------------------------------------------------------

    def put(self, row: int, col: int, payload: Any) -> None:
        if row < 0 or col < 0:
            raise ValueError("coordinates must be non-negative")
        self._ensure_covers(row, col)
        self._count += self._put(self._root, row, col, payload)

    def _put(self, node: _QuadNode, row: int, col: int, payload: Any) -> int:
        if node.points is not None:  # leaf
            added = 0 if (row, col) in node.points else 1
            node.points[(row, col)] = payload
            if len(node.points) > self.LEAF_CAPACITY and node.size > self.MIN_SIZE:
                points = node.points
                node.points = None
                node.children = [None] * 4
                for (p_row, p_col), p_payload in points.items():
                    self._put_into_child(node, p_row, p_col, p_payload)
            return added
        return self._put_into_child(node, row, col, payload)

    def _put_into_child(self, node: _QuadNode, row: int, col: int, payload: Any) -> int:
        quadrant = self._quadrant_of(node, row, col)
        child = node.children[quadrant]
        if child is None:
            top, left, size = self._child_region(node, quadrant)
            child = _QuadNode(top, left, size, points={})
            node.children[quadrant] = child
        return self._put(child, row, col, payload)

    def get(self, row: int, col: int, default: Any = None) -> Any:
        node = self._root
        while node is not None:
            if not self._covers(node, row, col):
                return default
            if node.points is not None:
                return node.points.get((row, col), default)
            node = node.children[self._quadrant_of(node, row, col)]
        return default

    def remove(self, row: int, col: int) -> bool:
        node = self._root
        while node is not None:
            if not self._covers(node, row, col):
                return False
            if node.points is not None:
                if (row, col) in node.points:
                    del node.points[(row, col)]
                    self._count -= 1
                    return True
                return False
            node = node.children[self._quadrant_of(node, row, col)]
        return False

    # -- queries ---------------------------------------------------------------

    def query_range(
        self, top: int, left: int, bottom: int, right: int
    ) -> Iterator[Tuple[int, int, Any]]:
        results: List[Tuple[int, int, Any]] = []

        def rec(node: Optional[_QuadNode]) -> None:
            if node is None:
                return
            if (
                node.top > bottom
                or node.top + node.size - 1 < top
                or node.left > right
                or node.left + node.size - 1 < left
            ):
                return
            if node.points is not None:
                for (row, col), payload in node.points.items():
                    if top <= row <= bottom and left <= col <= right:
                        results.append((row, col, payload))
                return
            for child in node.children:
                rec(child)

        rec(self._root)
        results.sort(key=lambda item: (item[0], item[1]))
        return iter(results)

    def items(self) -> Iterator[Tuple[int, int, Any]]:
        return self.query_range(0, 0, 2 ** 42, 2 ** 42)

    def extreme_row_in(self, lo: int, hi: int, smallest: bool = True) -> Optional[int]:
        """Extreme occupied row within rows ``[lo, hi]`` (quadtree variant:
        region pruning bounds the scan to the matching stripe)."""
        rows = [row for row, _col, _ in self.query_range(lo, 0, hi, 2 ** 42)]
        if not rows:
            return None
        return min(rows) if smallest else max(rows)

    def extreme_col_in(self, lo: int, hi: int, smallest: bool = True) -> Optional[int]:
        cols = [col for _row, col, _ in self.query_range(0, lo, 2 ** 42, hi)]
        if not cols:
            return None
        return min(cols) if smallest else max(cols)
