"""The positional index: table position ↔ record id.

Paper §3: "We introduce a new type of index, positional, which makes
interface-oriented operations, e.g., ordered presentation, efficient."

A table's rows have a *presentation order* (the order they appear on the
sheet).  Stores address rows by immutable rids; the positional index is the
sequence of rids in presentation order, backed by the order-statistic tree,
so that

* ``rid_at(pos)`` / ``window(pos, k)`` — what the viewport needs — are
  O(log n) / O(k + log n),
* ``insert_at(pos, rid)`` / ``delete_at(pos)`` — a row added or removed in
  the *middle* of the displayed table — are O(log n) instead of the O(n)
  renumbering a rownum column would need (experiment E5's baseline).

The index also counts its operations so benchmarks can report logical work
alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.index.order_statistic import OrderStatisticTree

__all__ = ["PositionalIndex"]


@dataclass
class _OpCounts:
    lookups: int = 0
    inserts: int = 0
    deletes: int = 0
    window_fetches: int = 0


class PositionalIndex:
    """Sequence of rids in presentation order."""

    def __init__(self, rids: Optional[Sequence[int]] = None, seed: int = 0xACE):
        self._tree: OrderStatisticTree[int] = OrderStatisticTree(rids, seed=seed)
        self.counts = _OpCounts()

    def __len__(self) -> int:
        return len(self._tree)

    # -- reads -------------------------------------------------------------

    def rid_at(self, pos: int) -> int:
        self.counts.lookups += 1
        return self._tree.get(pos)

    def window(self, pos: int, count: int) -> List[int]:
        """Rids for the viewport rows ``[pos, pos+count)`` (clamped)."""
        self.counts.window_fetches += 1
        return list(self._tree.iter_slice(pos, count))

    def __iter__(self) -> Iterator[int]:
        return iter(self._tree)

    def to_list(self) -> List[int]:
        return self._tree.to_list()

    # -- writes ---------------------------------------------------------------

    def insert_at(self, pos: int, rid: int) -> None:
        self.counts.inserts += 1
        self._tree.insert(pos, rid)

    def append(self, rid: int) -> None:
        self.counts.inserts += 1
        self._tree.append(rid)

    def insert_many_at(self, pos: int, rids: Sequence[int]) -> None:
        self.counts.inserts += len(rids)
        self._tree.insert_slice(pos, rids)

    def delete_at(self, pos: int) -> int:
        self.counts.deletes += 1
        return self._tree.delete(pos)

    def delete_many_at(self, pos: int, count: int) -> List[int]:
        self.counts.deletes += count
        return self._tree.delete_slice(pos, count)

    def move(self, from_pos: int, to_pos: int) -> None:
        """Reorder one row (drag a row to a new place on the sheet).

        ``to_pos`` is the row's position in the **resulting** sequence:
        after ``move(f, t)``, ``rid_at(t)`` returns the moved rid (``t``
        clamps to the end).  Because the rid is removed first, ``to_pos``
        indexes the already-shortened sequence directly — no off-by-one
        adjustment is needed for forward moves."""
        rid = self.delete_at(from_pos)
        self.insert_at(min(to_pos, len(self)), rid)

    def position_of(self, rid: int) -> Optional[int]:
        """Linear scan fallback (O(n)); the interface manager keeps its own
        key→position map so hot paths never call this."""
        for position, candidate in enumerate(self._tree):
            if candidate == rid:
                return position
        return None

    def validate(self) -> None:
        self._tree.validate()
