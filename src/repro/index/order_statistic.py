"""Order-statistic tree: a sequence with O(log n) positional operations.

The paper introduces "a new type of index, positional, which makes
interface-oriented operations, e.g., ordered presentation, efficient" (§3).
The crux is a data structure that supports, all in logarithmic time:

* ``get(pos)`` — fetch the element currently at a position,
* ``insert(pos, x)`` — insert, implicitly renumbering everything after,
* ``delete(pos)`` — remove, implicitly renumbering,
* slicing — fetch the window ``[pos, pos+k)`` the interface is showing.

A naive database emulation (``ORDER BY rownum LIMIT 1 OFFSET pos`` plus
renumbering on insert) is O(n) per operation; experiment E5 charts the gap.

The implementation is a size-augmented **treap** with deterministic,
seed-derived priorities (so test runs and benchmarks are reproducible).
Treaps give expected O(log n) with far less code than B-tree deletion, and
``split``/``merge`` make *range* inserts and deletes (inserting k rows in
the middle of a sheet) O(k + log n).
"""

from __future__ import annotations

import random
from typing import Any, Generic, Iterator, List, Optional, Sequence, TypeVar

from repro.errors import DataSpreadError

__all__ = ["OrderStatisticTree"]

T = TypeVar("T")


class _Node(Generic[T]):
    __slots__ = ("value", "priority", "size", "left", "right")

    def __init__(self, value: T, priority: int):
        self.value = value
        self.priority = priority
        self.size = 1
        self.left: Optional["_Node[T]"] = None
        self.right: Optional["_Node[T]"] = None

    def refresh(self) -> None:
        self.size = 1
        if self.left is not None:
            self.size += self.left.size
        if self.right is not None:
            self.size += self.right.size


def _merge(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    if left is None:
        return right
    if right is None:
        return left
    if left.priority > right.priority:
        left.right = _merge(left.right, right)
        left.refresh()
        return left
    right.left = _merge(left, right.left)
    right.refresh()
    return right


def _split(node: Optional[_Node], count: int):
    """Split into (first ``count`` elements, rest)."""
    if node is None:
        return None, None
    left_size = node.left.size if node.left is not None else 0
    if count <= left_size:
        first, second = _split(node.left, count)
        node.left = second
        node.refresh()
        return first, node
    first, second = _split(node.right, count - left_size - 1)
    node.right = first
    node.refresh()
    return node, second


class OrderStatisticTree(Generic[T]):
    """A mutable sequence with logarithmic positional updates."""

    def __init__(self, values: Optional[Sequence[T]] = None, seed: int = 0x5EED):
        self._rng = random.Random(seed)
        self._root: Optional[_Node[T]] = None
        if values:
            self._root = self._build(list(values))

    # -- construction -----------------------------------------------------

    def _priority(self) -> int:
        return self._rng.getrandbits(62)

    def _build(self, values: List[T]) -> Optional[_Node[T]]:
        """O(n) bulk load: balanced by construction, priorities fixed up by
        a max-heapify-like pass (midpoint recursion keeps it balanced even
        if priorities are ignored, so we just assign fresh priorities)."""
        if not values:
            return None

        def rec(lo: int, hi: int) -> Optional[_Node[T]]:
            if lo >= hi:
                return None
            mid = (lo + hi) // 2
            node = _Node(values[mid], self._priority())
            node.left = rec(lo, mid)
            node.right = rec(mid + 1, hi)
            # The midpoint recursion is balanced by construction; establish
            # the heap invariant by lifting the subtree maximum to the root
            # (duplicate priorities are fine for treap correctness).
            for child in (node.left, node.right):
                if child is not None and child.priority > node.priority:
                    node.priority = child.priority
            node.refresh()
            return node

        return rec(0, len(values))

    # -- basics -----------------------------------------------------------

    def __len__(self) -> int:
        return self._root.size if self._root is not None else 0

    def _check_pos(self, pos: int, upper: int) -> int:
        if pos < 0:
            pos += len(self)
        if not (0 <= pos < upper):
            raise IndexError(f"position {pos} out of range for size {len(self)}")
        return pos

    def get(self, pos: int) -> T:
        pos = self._check_pos(pos, len(self))
        node = self._root
        while node is not None:
            left_size = node.left.size if node.left is not None else 0
            if pos < left_size:
                node = node.left
            elif pos == left_size:
                return node.value
            else:
                pos -= left_size + 1
                node = node.right
        raise DataSpreadError("unreachable: tree size out of sync")

    def set(self, pos: int, value: T) -> None:
        pos = self._check_pos(pos, len(self))
        node = self._root
        while node is not None:
            left_size = node.left.size if node.left is not None else 0
            if pos < left_size:
                node = node.left
            elif pos == left_size:
                node.value = value
                return
            else:
                pos -= left_size + 1
                node = node.right
        raise DataSpreadError("unreachable: tree size out of sync")

    # -- mutation ----------------------------------------------------------

    def insert(self, pos: int, value: T) -> None:
        if pos < 0:
            pos += len(self) + 1
        if not (0 <= pos <= len(self)):
            raise IndexError(f"insert position {pos} out of range for size {len(self)}")
        first, second = _split(self._root, pos)
        self._root = _merge(_merge(first, _Node(value, self._priority())), second)

    def append(self, value: T) -> None:
        self.insert(len(self), value)

    def delete(self, pos: int) -> T:
        pos = self._check_pos(pos, len(self))
        first, rest = _split(self._root, pos)
        target, second = _split(rest, 1)
        assert target is not None
        self._root = _merge(first, second)
        return target.value

    def insert_slice(self, pos: int, values: Sequence[T]) -> None:
        """Insert ``values`` starting at ``pos`` in O(k + log n)."""
        if pos < 0:
            pos += len(self) + 1
        if not (0 <= pos <= len(self)):
            raise IndexError(f"insert position {pos} out of range for size {len(self)}")
        if not values:
            return
        middle = self._build(list(values))
        first, second = _split(self._root, pos)
        self._root = _merge(_merge(first, middle), second)

    def delete_slice(self, pos: int, count: int) -> List[T]:
        """Delete ``count`` elements starting at ``pos``; returns them."""
        if count < 0:
            raise IndexError("count must be non-negative")
        if count == 0:
            return []
        pos = self._check_pos(pos, len(self))
        if pos + count > len(self):
            raise IndexError(f"slice [{pos}, {pos + count}) exceeds size {len(self)}")
        first, rest = _split(self._root, pos)
        middle, second = _split(rest, count)
        self._root = _merge(first, second)
        removed: List[T] = []
        _collect(middle, removed)
        return removed

    # -- iteration -----------------------------------------------------------

    def iter_slice(self, pos: int, count: int) -> Iterator[T]:
        """Iterate the window ``[pos, pos+count)`` — the viewport fetch."""
        if count <= 0 or pos >= len(self):
            return iter(())
        pos = max(pos, 0)
        count = min(count, len(self) - pos)
        out: List[T] = []
        _collect_slice(self._root, pos, pos + count, 0, out)
        return iter(out)

    def __iter__(self) -> Iterator[T]:
        out: List[T] = []
        _collect(self._root, out)
        return iter(out)

    def to_list(self) -> List[T]:
        return list(self)

    def index_of(self, predicate) -> Optional[int]:
        """Linear search helper (used only in tests/tools)."""
        for index, value in enumerate(self):
            if predicate(value):
                return index
        return None

    # -- verification ---------------------------------------------------------

    def validate(self) -> None:
        """Check size augmentation and heap order (property tests)."""

        def rec(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            left = rec(node.left)
            right = rec(node.right)
            if node.size != left + right + 1:
                raise DataSpreadError("size augmentation broken")
            for child in (node.left, node.right):
                if child is not None and child.priority > node.priority:
                    raise DataSpreadError("heap order broken")
            return node.size

        rec(self._root)


def _collect(node: Optional[_Node], out: List) -> None:
    # Iterative in-order traversal (avoids recursion limits on deep trees).
    stack = []
    current = node
    while stack or current is not None:
        while current is not None:
            stack.append(current)
            current = current.left
        current = stack.pop()
        out.append(current.value)
        current = current.right


def _collect_slice(
    node: Optional[_Node], lo: int, hi: int, offset: int, out: List
) -> None:
    """Collect in-order values whose global rank is in [lo, hi)."""
    if node is None:
        return
    left_size = node.left.size if node.left is not None else 0
    my_rank = offset + left_size
    if lo < my_rank:
        _collect_slice(node.left, lo, hi, offset, out)
    if lo <= my_rank < hi:
        out.append(node.value)
    if hi > my_rank + 1:
        _collect_slice(node.right, lo, hi, my_rank + 1, out)
