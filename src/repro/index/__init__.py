"""Index structures.

* :mod:`repro.index.order_statistic` — the sequence structure behind the
  paper's **positional index** (§3): O(log n) access/insert/delete by
  position.
* :mod:`repro.index.positional` — the positional index proper: maps table
  positions to record ids and keeps them stable under middle
  inserts/deletes.
* :mod:`repro.index.posmap` — positional mapping for the *interface*
  axes: logical row/column positions over stable physical cell keys, so
  structural edits splice the key space instead of moving cells.
* :mod:`repro.index.btree` — B+-tree key index used for primary keys and the
  key↔position mapping of the interface manager.
* :mod:`repro.index.index2d` — grid and quadtree indexes over spreadsheet
  cell blocks (interface storage manager, §3).
"""

from repro.index.order_statistic import OrderStatisticTree
from repro.index.positional import PositionalIndex
from repro.index.posmap import LOGICAL_MAX, PositionalMapper
from repro.index.btree import BPlusTree
from repro.index.index2d import GridIndex, QuadTree

__all__ = [
    "OrderStatisticTree",
    "PositionalIndex",
    "PositionalMapper",
    "LOGICAL_MAX",
    "BPlusTree",
    "GridIndex",
    "QuadTree",
]
