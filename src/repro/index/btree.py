"""B+-tree key index.

Used for primary-key lookups in :class:`~repro.engine.table.Table` and for
the interface manager's key↔position mapping (paper §3: "the interface
manager maintains a mapping between a tuple's key attribute and its
corresponding location").

The tree keeps all values in sorted leaves linked left-to-right, supporting
point lookups, ordered iteration and range scans.  Deletion is *lazy* (keys
are removed from leaves without merging underfull nodes) — the standard
engineering trade-off (PostgreSQL nbtree behaves similarly); asymptotic
bounds are preserved for our read-heavy uses and the structure stays simple
enough to verify exhaustively in property tests.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import StorageError

__all__ = ["BPlusTree"]

_ORDER = 32  # max keys per node


class _Leaf:
    __slots__ = ("keys", "values", "next")

    def __init__(self):
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.next: Optional["_Leaf"] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self):
        self.keys: List[Any] = []       # separator keys; len == len(children) - 1
        self.children: List[Any] = []   # _Leaf or _Internal


class BPlusTree:
    """Sorted key → value map with range scans.

    ``unique=True`` (default) raises :class:`~repro.errors.StorageError` on
    duplicate inserts; with ``unique=False`` the value slot holds a list and
    lookups return lists.
    """

    def __init__(self, unique: bool = True):
        self.unique = unique
        self._root: Any = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- search ------------------------------------------------------------

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: Any, default: Any = None) -> Any:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __contains__(self, key: Any) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    # -- insertion -----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        if key is None:
            raise StorageError("cannot index NULL key")
        result = self._insert(self._root, key, value)
        if result is not None:
            separator, right = result
            new_root = _Internal()
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root

    def _insert(self, node: Any, key: Any, value: Any):
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                if self.unique:
                    raise StorageError(f"duplicate key {key!r}")
                node.values[index].append(value)
                self._size += 1
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value if self.unique else [value])
            self._size += 1
            if len(node.keys) > _ORDER:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        result = self._insert(node.children[index], key, value)
        if result is None:
            return None
        separator, right = result
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) > _ORDER:
            return self._split_internal(node)
        return None

    @staticmethod
    def _split_leaf(leaf: _Leaf) -> Tuple[Any, _Leaf]:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        leaf.next = right
        return right.keys[0], right

    @staticmethod
    def _split_internal(node: _Internal) -> Tuple[Any, _Internal]:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Internal()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return separator, right

    # -- deletion (lazy) -------------------------------------------------------

    def delete(self, key: Any, value: Any = None) -> bool:
        """Remove ``key`` (or, for non-unique trees, one ``value`` under the
        key).  Returns True if something was removed."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            return False
        if self.unique:
            del leaf.keys[index]
            del leaf.values[index]
            self._size -= 1
            return True
        bucket = leaf.values[index]
        if value is None:
            self._size -= len(bucket)
            del leaf.keys[index]
            del leaf.values[index]
            return True
        try:
            bucket.remove(value)
        except ValueError:
            return False
        self._size -= 1
        if not bucket:
            del leaf.keys[index]
            del leaf.values[index]
        return True

    # -- iteration ----------------------------------------------------------------

    def _leftmost(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        return node

    def items(self) -> Iterator[Tuple[Any, Any]]:
        leaf: Optional[_Leaf] = self._leftmost()
        while leaf is not None:
            for key, value in zip(leaf.keys, leaf.values):
                yield key, value
            leaf = leaf.next

    def keys(self) -> Iterator[Any]:
        for key, _ in self.items():
            yield key

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` for keys in the given interval."""
        if low is None:
            leaf: Optional[_Leaf] = self._leftmost()
            start = 0
        else:
            leaf = self._find_leaf(low)
            start = (
                bisect.bisect_left(leaf.keys, low)
                if include_low
                else bisect.bisect_right(leaf.keys, low)
            )
        while leaf is not None:
            for index in range(start, len(leaf.keys)):
                key = leaf.keys[index]
                if high is not None:
                    if include_high and key > high:
                        return
                    if not include_high and key >= high:
                        return
                yield key, leaf.values[index]
            leaf = leaf.next
            start = 0

    # -- verification -----------------------------------------------------------

    def validate(self) -> None:
        """Check sortedness and separator invariants (property tests)."""
        previous = None
        count = 0
        for key, value in self.items():
            if previous is not None and key <= previous:
                raise StorageError("keys out of order")
            previous = key
            count += len(value) if not self.unique else 1
        if count != self._size:
            raise StorageError(f"size drift: counted {count}, recorded {self._size}")
