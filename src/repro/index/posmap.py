"""Positional mapping: logical row/column positions over stable physical keys.

The paper's positional index makes "interface-oriented operations, e.g.,
ordered presentation, efficient" — the crux being that inserting or
deleting a row in the *middle* of a sheet must not renumber everything
below it.  :class:`~repro.index.positional.PositionalIndex` already gives
a table that property; this module gives it to the **interface storage
manager**: cells are stored under immutable *physical* keys, and a
:class:`PositionalMapper` per axis translates the logical (presentation)
coordinate the user sees into the physical key the 2-D index stores.

A structural edit then becomes a *key-space splice*: inserting ``k`` rows
at position ``p`` carves ``k`` fresh physical keys into the mapping at
``p`` — **zero stored cells move**, and every cell below the edit simply
answers to a logical position one ``k`` higher.

Representation: the monotone logical→physical function is piecewise
translational, so the mapper holds *spans* — maximal runs of consecutive
logical positions mapping to consecutive physical keys — in a
weight-augmented order-statistic treap (the same structure backing
:mod:`repro.index.order_statistic`, augmented by span *length* instead of
node count, with parent pointers so the reverse lookup can rank a span in
O(log s)).  With ``s`` spans (``s ≤ 1 + 2·edits``):

* ``physical_of(pos)`` — O(log s) weighted descent,
* ``position_of(phys)`` — O(log s): bisect the span covering ``phys``
  (span physical intervals are disjoint), then rank it by climbing parent
  pointers — **not** the O(n) scan the naive reverse lookup needs,
* ``insert(at, k)`` / ``delete(at, k)`` — O(log s) splice, independent of
  how many cells or rows the sheet holds.

The logical axis is a fixed universe ``[0, LOGICAL_MAX)`` (2^40 slots —
vastly beyond any sheet); fresh physical keys are allocated past
``LOGICAL_MAX`` so they can never collide with the identity mapping.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DataSpreadError

__all__ = ["PositionalMapper", "LOGICAL_MAX"]

#: Size of the logical universe per axis (positions 0 .. LOGICAL_MAX-1).
LOGICAL_MAX = 1 << 40


class _Span:
    """A run of ``length`` logical positions mapping to physical keys
    ``[phys, phys+length)``."""

    __slots__ = ("phys", "length", "priority", "left", "right", "parent", "total")

    def __init__(self, phys: int, length: int, priority: int):
        self.phys = phys
        self.length = length
        self.priority = priority
        self.left: Optional["_Span"] = None
        self.right: Optional["_Span"] = None
        self.parent: Optional["_Span"] = None
        self.total = length  # subtree length sum (the order-statistic weight)

    def refresh(self) -> None:
        self.total = self.length
        if self.left is not None:
            self.total += self.left.total
            self.left.parent = self
        if self.right is not None:
            self.total += self.right.total
            self.right.parent = self


def _merge(left: Optional[_Span], right: Optional[_Span]) -> Optional[_Span]:
    if left is None:
        return right
    if right is None:
        return left
    if left.priority > right.priority:
        left.right = _merge(left.right, right)
        left.refresh()
        return left
    right.left = _merge(left, right.left)
    right.refresh()
    return right


@dataclass
class _MapStats:
    lookups: int = 0
    reverse_lookups: int = 0
    splices: int = 0


class PositionalMapper:
    """Monotone logical-position → stable-physical-key mapping for one axis."""

    def __init__(self, seed: int = 0xB0A):
        import random

        self._rng = random.Random(seed)
        self._root: Optional[_Span] = None
        # Reverse lookup bookkeeping: span physical intervals are disjoint,
        # so a sorted list of interval starts + a dict to the owning span
        # finds the span covering any physical key with one bisect.
        self._phys_starts: List[int] = []
        self._span_at: Dict[int, _Span] = {}
        self._next_fresh = LOGICAL_MAX
        self.counts = _MapStats()
        self._set_root(self._new_span(0, LOGICAL_MAX))

    # -- bookkeeping -------------------------------------------------------

    def _new_span(self, phys: int, length: int, priority: Optional[int] = None) -> _Span:
        span = _Span(
            phys, length, self._rng.getrandbits(62) if priority is None else priority
        )
        bisect.insort(self._phys_starts, phys)
        self._span_at[phys] = span
        return span

    def _drop_span(self, span: _Span) -> None:
        index = bisect.bisect_left(self._phys_starts, span.phys)
        del self._phys_starts[index]
        del self._span_at[span.phys]

    def _set_root(self, root: Optional[_Span]) -> None:
        self._root = root
        if root is not None:
            root.parent = None

    @property
    def pristine(self) -> bool:
        """True while the mapping is still the identity (no splice ever)."""
        return self.counts.splices == 0

    @property
    def n_spans(self) -> int:
        return len(self._span_at)

    # -- treap plumbing ------------------------------------------------------

    def _split(
        self, node: Optional[_Span], weight: int
    ) -> Tuple[Optional[_Span], Optional[_Span]]:
        """Split a subtree into (first ``weight`` logical units, rest),
        carving a span in two when the cut falls inside it."""
        if node is None:
            return None, None
        left_total = node.left.total if node.left is not None else 0
        if weight <= left_total:
            first, second = self._split(node.left, weight)
            node.left = second
            node.refresh()
            if first is not None:
                first.parent = None
            return first, node
        if weight >= left_total + node.length:
            first, second = self._split(node.right, weight - left_total - node.length)
            node.right = first
            node.refresh()
            if second is not None:
                second.parent = None
            return node, second
        # The cut is interior to this span: carve off the remainder.  The
        # remainder inherits the node's priority so any ancestor adopting
        # the right half keeps the heap order (duplicates are fine).
        keep = weight - left_total
        remainder = self._new_span(node.phys + keep, node.length - keep, node.priority)
        node.length = keep
        right_subtree = node.right
        node.right = None
        node.refresh()
        second = _merge(remainder, right_subtree)
        if second is not None:
            second.parent = None
        return node, second

    def _collect_drop(self, node: Optional[_Span], out: List[Tuple[int, int]]) -> None:
        """Unregister every span in ``node``'s subtree, recording the freed
        physical intervals as inclusive ``(lo, hi)`` pairs."""
        if node is None:
            return
        self._collect_drop(node.left, out)
        out.append((node.phys, node.phys + node.length - 1))
        self._drop_span(node)
        self._collect_drop(node.right, out)

    # -- forward lookup -------------------------------------------------------

    def physical_of(self, pos: int) -> int:
        """Physical key of logical position ``pos`` — O(log s)."""
        if not (0 <= pos < LOGICAL_MAX):
            raise IndexError(f"logical position {pos} outside [0, {LOGICAL_MAX})")
        self.counts.lookups += 1
        node = self._root
        remaining = pos
        while node is not None:
            left_total = node.left.total if node.left is not None else 0
            if remaining < left_total:
                node = node.left
            elif remaining < left_total + node.length:
                return node.phys + (remaining - left_total)
            else:
                remaining -= left_total + node.length
                node = node.right
        raise DataSpreadError("positional mapper out of sync")  # pragma: no cover

    def intervals(self, lo: int, hi: int) -> List[Tuple[int, int, int]]:
        """Physical intervals covering logical ``[lo, hi]`` (inclusive), in
        logical order: ``(phys_lo, phys_hi, logical_lo)`` triples.

        O(log s + overlapping spans); the common un-spliced sheet yields a
        single triple."""
        if hi >= LOGICAL_MAX:
            hi = LOGICAL_MAX - 1
        if lo < 0:
            lo = 0
        if lo > hi:
            return []
        out: List[Tuple[int, int, int]] = []

        def rec(node: Optional[_Span], offset: int) -> None:
            if node is None or offset > hi or offset + node.total <= lo:
                return
            left_total = node.left.total if node.left is not None else 0
            rec(node.left, offset)
            span_lo = offset + left_total
            span_hi = span_lo + node.length - 1
            a = max(lo, span_lo)
            b = min(hi, span_hi)
            if a <= b:
                out.append((node.phys + (a - span_lo), node.phys + (b - span_lo), a))
            rec(node.right, span_hi + 1)

        rec(self._root, 0)
        return out

    # -- reverse lookup -------------------------------------------------------

    def position_of(self, phys: int) -> Optional[int]:
        """Logical position currently mapped to physical key ``phys``, or
        ``None`` if the key was freed by a delete.  O(log s): bisect for the
        covering span, then rank it by climbing parent pointers — the
        bookkeeping that replaces the O(n) scan."""
        self.counts.reverse_lookups += 1
        index = bisect.bisect_right(self._phys_starts, phys) - 1
        if index < 0:
            return None
        span = self._span_at[self._phys_starts[index]]
        if phys >= span.phys + span.length:
            return None
        rank = span.left.total if span.left is not None else 0
        node = span
        while node.parent is not None:
            parent = node.parent
            if node is parent.right:
                rank += (parent.left.total if parent.left is not None else 0)
                rank += parent.length
            node = parent
        return rank + (phys - span.phys)

    # -- splices ---------------------------------------------------------------

    def insert(self, at: int, count: int) -> List[Tuple[int, int]]:
        """Insert ``count`` fresh positions at ``at``; positions ≥ ``at``
        shift up (their physical keys do not change).  Returns the physical
        intervals pushed off the end of the universe (empty in practice)."""
        if count <= 0 or at >= LOGICAL_MAX:
            return []
        self.counts.splices += 1
        first, second = self._split(self._root, at)
        fresh = self._new_span(self._next_fresh, count)
        self._next_fresh += count
        root = _merge(_merge(first, fresh), second)
        kept, overflow = self._split(root, LOGICAL_MAX)
        dropped: List[Tuple[int, int]] = []
        self._collect_drop(overflow, dropped)
        self._set_root(kept)
        return dropped

    def delete(self, at: int, count: int) -> List[Tuple[int, int]]:
        """Delete positions ``[at, at+count)``; positions above shift down
        (physical keys unchanged) and ``count`` fresh positions pad the end.
        Returns the freed physical intervals (whose cells must be purged)."""
        if count <= 0 or at >= LOGICAL_MAX:
            return []
        count = min(count, LOGICAL_MAX - at)
        self.counts.splices += 1
        first, rest = self._split(self._root, at)
        middle, second = self._split(rest, count)
        dropped: List[Tuple[int, int]] = []
        self._collect_drop(middle, dropped)
        pad = self._new_span(self._next_fresh, count)
        self._next_fresh += count
        self._set_root(_merge(_merge(first, second), pad))
        return dropped

    # -- verification -----------------------------------------------------------

    def validate(self) -> None:
        """Invariant check for property tests: weights, heap order, parent
        pointers, reverse-lookup table, and total universe size."""
        seen: List[_Span] = []

        def rec(node: Optional[_Span], parent: Optional[_Span]) -> int:
            if node is None:
                return 0
            if node.parent is not parent:
                raise DataSpreadError("parent pointer broken")
            if node.length <= 0:
                raise DataSpreadError("empty span")
            for child in (node.left, node.right):
                if child is not None and child.priority > node.priority:
                    raise DataSpreadError("heap order broken")
            total = rec(node.left, node) + node.length + rec(node.right, node)
            if node.total != total:
                raise DataSpreadError("weight augmentation broken")
            seen.append(node)
            return total

        if rec(self._root, None) != LOGICAL_MAX:
            raise DataSpreadError("universe size drifted")
        if {span.phys for span in seen} != set(self._span_at):
            raise DataSpreadError("reverse-lookup table out of sync")
        intervals = sorted((span.phys, span.phys + span.length) for span in seen)
        for (_, prev_end), (start, _) in zip(intervals, intervals[1:]):
            if start < prev_end:
                raise DataSpreadError("physical intervals overlap")
